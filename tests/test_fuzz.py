"""Coverage-guided fuzzing subsystem: bitmap, corpus, engine, hybrid.

Determinism is the subsystem's contract — campaigns consult no wall
clock and no OS randomness — so most tests here assert byte-identical
artifacts across repeated runs: corpus digests, campaign verdicts, and
whole Table II cells (serial and ``jobs=2``).
"""

import pytest

from repro import obs
from repro.bombs import get_bomb
from repro.errors import ErrorStage
from repro.eval import run_table2
from repro.fuzz import (
    CoverageFuzzer,
    FuzzConfig,
    HybridPolicy,
    attach_store,
    run_hybrid,
)
from repro.fuzz.corpus import Corpus, EdgeCoverage, bucket_index, edge_slot
from repro.fuzz.mutator import (
    MAX_INPUT_LEN,
    Mutator,
    cracking_candidates,
    dictionary_tokens,
)
from repro.fuzz.random_fuzzer import _XorShift
from repro.service import ResultStore


class TestCoverageBitmap:
    def test_edge_slot_is_stable_and_bounded(self):
        assert edge_slot(0x1000, 0x1004) == edge_slot(0x1000, 0x1004)
        assert edge_slot(0x1000, 0x1004) != edge_slot(0x1004, 0x1000)
        for src, dst in [(0, 0), (2**40, 7), (0x1234, 0x5678)]:
            assert 0 <= edge_slot(src, dst) < (1 << 16)

    def test_bucket_thresholds(self):
        assert bucket_index(1) == 0
        assert bucket_index(2) == 1
        assert bucket_index(4) == 3
        assert bucket_index(5) == 4
        assert bucket_index(33) == 7
        assert bucket_index(10**6) == 7

    def test_merge_reports_new_bits_only(self):
        cov = EdgeCoverage()
        assert cov.merge({5: 1, 9: 2})          # all new
        assert not cov.merge({5: 1})            # same (slot, bucket)
        assert cov.merge({5: 3})                # same slot, new bucket
        assert cov.edges == 2 and cov.bits == 3

    def test_payload_round_trip(self):
        cov = EdgeCoverage()
        cov.merge({1: 1, 2: 40})
        clone = EdgeCoverage.from_payload(cov.to_payload())
        assert clone.edges == cov.edges and clone.bits == cov.bits
        assert not clone.merge({1: 1, 2: 40})


class TestCorpus:
    def test_add_keeps_only_interesting_inputs(self):
        corpus = Corpus()
        assert corpus.add(b"a", {1: 1}, 1)
        assert not corpus.add(b"b", {1: 1}, 2)   # nothing new
        assert corpus.add(b"c", {2: 1}, 3)
        assert corpus.datas() == [b"a", b"c"]

    def test_digest_is_order_sensitive(self):
        one, two = Corpus(), Corpus()
        one.add(b"a", {1: 1}, 1)
        one.add(b"b", {2: 1}, 2)
        two.add(b"b", {2: 1}, 1)
        two.add(b"a", {1: 1}, 2)
        assert one.digest() != two.digest()

    def test_payload_round_trip_preserves_digest(self):
        corpus = Corpus()
        corpus.add(b"seed", {1: 1, 2: 2}, 1)
        corpus.add(b"x\xff", {3: 1}, 4)
        clone = Corpus.from_payload(corpus.to_payload())
        assert clone.digest() == corpus.digest()
        assert [e.execution for e in clone.entries] == [1, 4]

    def test_best_ranks_by_own_run_coverage(self):
        corpus = Corpus()
        corpus.add(b"small", {1: 1}, 1)
        corpus.add(b"wide", {2: 1, 3: 1, 4: 1}, 2)
        assert [e.data for e in corpus.best(2)] == [b"wide", b"small"]


class TestMutator:
    def test_cracking_candidates_cover_the_oracles(self):
        candidates = []
        stream = cracking_candidates()
        for _ in range(700):
            candidates.append(next(stream))
        # The leetspeak dictionary reaches the crypto passwords and the
        # numeric sweep reaches the magic numbers, all inside the
        # sandshrewx fallback budget.
        for oracle in (b"s3cret", b"k3y!", b"s3cr3t", b"15", b"7"):
            assert oracle in candidates, oracle

    def test_cracking_candidates_is_deterministic(self):
        a = [next(cracking_candidates()) for _ in range(1)]
        first = list(zip(cracking_candidates(), range(200)))
        second = list(zip(cracking_candidates(), range(200)))
        assert first == second
        assert a[0] == first[0][0]

    def test_mutate_is_deterministic_and_bounded(self):
        out_a = Mutator(_XorShift(42)).mutate(b"seed", [b"seed", b"pool"])
        out_b = Mutator(_XorShift(42)).mutate(b"seed", [b"seed", b"pool"])
        assert out_a == out_b
        mut = Mutator(_XorShift(7))
        for _ in range(300):
            assert len(mut.mutate(b"x" * MAX_INPUT_LEN, [b"y"])) \
                <= MAX_INPUT_LEN

    def test_mutate_never_returns_empty(self):
        mut = Mutator(_XorShift(3))
        for _ in range(300):
            assert mut.mutate(b"", [])

    def test_dictionary_tokens_include_leet_forms(self):
        tokens = dictionary_tokens()
        assert b"$3cr3t" in tokens and b"k3y" in tokens


class TestCoverageFuzzer:
    def _fuzzer(self, bomb_id, **overrides):
        bomb = get_bomb(bomb_id)
        config = FuzzConfig(persist=False, **overrides)
        return bomb, CoverageFuzzer(
            bomb.image, config, bomb.base_env(), argv0=bomb_id.encode(),
            fixed_tail=tuple(bomb.seed_argv[1:]),
        )

    def test_campaign_triggers_small_domain_bomb(self):
        bomb, fuzzer = self._fuzzer("cp_stack")
        result = fuzzer.campaign((b"11",))
        assert result.triggered
        assert bomb.triggers([result.trigger_input])

    def test_campaign_is_deterministic(self):
        _, fuzzer = self._fuzzer("sj_jump")
        a = fuzzer.campaign((b"1",))
        b = fuzzer.campaign((b"1",))
        assert a.triggered == b.triggered
        assert a.executions == b.executions
        assert a.trigger_input == b.trigger_input
        assert a.corpus.digest() == b.corpus.digest()

    def test_coverage_feedback_populates_corpus(self):
        _, fuzzer = self._fuzzer("sv_time", budget=40)
        result = fuzzer.campaign((b"1",))
        assert not result.triggered
        assert len(result.corpus) >= 1
        assert result.corpus.coverage.edges > 0
        assert result.steps > 0

    def test_campaign_persists_and_restores(self, tmp_path):
        bomb = get_bomb("sv_time")
        config = FuzzConfig(budget=40)

        def fresh():
            return CoverageFuzzer(bomb.image, config, bomb.base_env(),
                                  argv0=b"sv_time")

        attach_store(ResultStore(tmp_path))
        try:
            rec = obs.Recorder()
            with obs.recording(rec):
                cold = fresh().campaign((b"1",))
                warm = fresh().campaign((b"1",))
            counters = rec.snapshot()["counters"]
        finally:
            attach_store(None)
        assert not cold.restored and warm.restored
        assert warm.executions == cold.executions
        assert warm.corpus.digest() == cold.corpus.digest()
        # The warm campaign executed nothing: same execution counter as
        # one cold campaign, plus one restore.
        assert counters["fuzz.executions"] == cold.executions
        assert counters["fuzz.campaign_restores"] == 1

    def test_different_seeds_get_different_keys(self, tmp_path):
        bomb = get_bomb("sv_time")
        fuzzer = CoverageFuzzer(bomb.image, FuzzConfig(budget=10),
                                bomb.base_env(), argv0=b"sv_time")
        assert fuzzer._campaign_key((b"1",)) != fuzzer._campaign_key((b"2",))
        other = CoverageFuzzer(bomb.image, FuzzConfig(budget=11),
                               bomb.base_env(), argv0=b"sv_time")
        assert fuzzer._campaign_key((b"1",)) != other._campaign_key((b"1",))


class TestHybrid:
    def test_fuzz_half_solves_and_is_deterministic(self):
        bomb = get_bomb("ef_srand")
        policy = HybridPolicy()
        runs = [run_hybrid(bomb.image, policy, bomb.seed_argv,
                           bomb.base_env(), argv0=b"ef_srand")
                for _ in range(2)]
        for report in runs:
            assert report.solved and report.solved_by == "fuzz"
            assert bomb.triggers(report.solution)
        assert runs[0].solution == runs[1].solution
        assert runs[0].corpus_digests == runs[1].corpus_digests
        assert runs[0].fuzz_executions == runs[1].fuzz_executions

    def test_policy_fingerprint_tracks_both_halves(self):
        base = HybridPolicy().fingerprint()
        assert HybridPolicy().fingerprint() == base
        assert HybridPolicy(seed=1).fingerprint() != base
        tweaked = HybridPolicy()
        tweaked.concolic.rounds += 1
        assert tweaked.fingerprint() != base

    def test_table2_cell_identical_serial_and_parallel(self):
        runs = [
            run_table2(bomb_ids=("cp_stack",), tools=("hybridx",)),
            run_table2(bomb_ids=("cp_stack",), tools=("hybridx",)),
            run_table2(bomb_ids=("cp_stack",), tools=("hybridx",), jobs=2),
        ]
        cells = [r.cells[("cp_stack", "hybridx")] for r in runs]
        assert all(c.outcome is ErrorStage.OK for c in cells)
        assert len({tuple(c.report.solution) for c in cells}) == 1
        assert len({c.label for c in cells}) == 1


class TestVmFuzzHooks:
    def test_on_edge_reports_control_flow(self):
        from repro.vm import Machine

        bomb = get_bomb("cp_stack")
        machine = Machine(bomb.image, [b"cp_stack", b"11"], bomb.base_env())
        edges = []
        machine.on_edge = lambda src, dst: edges.append((src, dst))
        machine.run(200_000)
        assert edges, "no control-flow edges reported"
        assert all(isinstance(s, int) and isinstance(d, int)
                   for s, d in edges)

    def test_call_function_runs_library_code(self):
        from repro.vm import Machine

        bomb = get_bomb("cf_sha1")
        image = bomb.image
        syms = image.lib_symbols()
        assert "sha1" in syms
        machine = Machine(image, [b"opaque"])
        memory = machine.processes[machine.main_pid].memory
        msg = machine.scratch_alloc(8)
        out_a = machine.scratch_alloc(20)
        out_b = machine.scratch_alloc(20)
        assert msg != out_a != out_b
        memory.write(msg, b"s3cret\x00")
        machine.call_function(syms["sha1"].addr, [msg, 6, out_a])
        machine.call_function(syms["sha1"].addr, [msg, 6, out_b])
        digest_a = bytes(memory.read(out_a, 20))
        digest_b = bytes(memory.read(out_b, 20))
        assert digest_a == digest_b != b"\x00" * 20

    def test_call_function_restores_context(self):
        from repro.errors import VMError
        from repro.vm import Machine

        bomb = get_bomb("cf_sha1")
        machine = Machine(bomb.image, [b"opaque"])
        proc = machine.processes[machine.main_pid]
        thread = proc.threads[0]
        before_pc = thread.ctx.pc
        addr = bomb.image.lib_symbols()["sha1"].addr
        with pytest.raises(VMError):
            machine.call_function(addr, [0, 6, 0], max_steps=5)
        assert thread.ctx.pc == before_pc and thread.state == "run"
