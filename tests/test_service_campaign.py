"""Campaign service end to end: warm cache, invalidation, fault injection.

The acceptance criteria under test (ISSUE 4):

* re-running an identical campaign against a warm cache performs zero
  tool analyses and renders Table II byte-identical to the cold run;
* editing one bomb's source invalidates only that bomb's cells;
* a worker SIGKILLed mid-cell is requeued and the campaign completes
  with correct merged metrics — no cell lost, none double-counted;
* a per-cell wall-clock overrun maps to outcome E (and is never
  cached, since it reflects the run's budget, not the tool).
"""

import json
import os

import pytest

from repro import obs
from repro.bombs import get_bomb
from repro.eval import render_table2, run_table2
from repro.service import (
    KILL_CELL_ENV,
    CampaignService,
    CampaignSpec,
    ResultStore,
    cell_key,
)

from .test_service_store import edited_copy

BOMBS = ("cp_stack", "sv_time")
TOOLS = ("tritonx", "bapx")


@pytest.fixture
def service(tmp_path):
    return CampaignService(tmp_path / "svc")


class TestWarmCache:
    def test_identical_campaign_twice_is_all_hits_and_byte_identical(
            self, service):
        spec = CampaignSpec(bombs=BOMBS, tools=TOOLS, jobs=2)
        cold = service.run(service.submit(spec))
        assert cold.stats["computed"] == 4 and cold.stats["cache_hits"] == 0

        warm = service.run(service.submit(spec))
        assert warm.stats["cache_hits"] == 4
        assert warm.stats["computed"] == 0  # zero tool analyses
        assert render_table2(warm.table) == render_table2(cold.table)
        assert json.dumps(warm.table.to_json(), indent=2) == \
            json.dumps(cold.table.to_json(), indent=2)

    def test_results_verb_reassembles_from_store(self, service):
        spec = CampaignSpec(bombs=BOMBS, tools=("tritonx",))
        cid = service.submit(spec)
        run = service.run(cid)
        assembled = service.results(cid)
        assert render_table2(assembled) == render_table2(run.table)

    def test_status_reports_job_states(self, service):
        spec = CampaignSpec(bombs=("cp_stack",), tools=("tritonx",))
        cid = service.submit(spec)
        before = service.status(cid)
        assert before["states"]["pending"] == 1
        service.run(cid)
        after = service.status(cid)
        assert after["states"]["done"] == 1
        assert after["results"] == {"computed": 1}

    def test_campaign_ids_are_content_derived_and_unique(self, service):
        spec = CampaignSpec(bombs=("cp_stack",), tools=("tritonx",))
        first, second = service.submit(spec), service.submit(spec)
        assert first != second
        assert first.rsplit("-", 1)[0] == second.rsplit("-", 1)[0]


class TestInvalidation:
    def test_editing_one_bomb_recomputes_only_its_cells(
            self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            run_table2(bomb_ids=BOMBS, tools=("tritonx",), cache=store)
        cold = rec.snapshot()["counters"]
        assert cold["service.cache_misses"] == 2
        assert cold["service.cache_stores"] == 2

        # Edit cp_stack's source: its image digest changes, sv_time's
        # does not.
        edited = edited_copy("cp_stack", "int service_pad = argc + 40;")
        real_get_bomb = get_bomb

        def patched(bomb_id):
            return edited if bomb_id == "cp_stack" else real_get_bomb(bomb_id)

        monkeypatch.setattr("repro.eval.harness.get_bomb", patched)
        rec2 = obs.Recorder()
        with obs.recording(rec2, close=False):
            run_table2(bomb_ids=BOMBS, tools=("tritonx",), cache=store)
        counters = rec2.snapshot()["counters"]
        assert counters["service.cache_hits"] == 1       # sv_time reused
        assert counters["service.cache_misses"] == 1     # cp_stack recomputed
        assert counters["service.cache_stores"] == 1


class TestFaultTolerance:
    def test_sigkilled_worker_is_requeued_and_campaign_completes(
            self, service, monkeypatch):
        monkeypatch.setenv(KILL_CELL_ENV, "cp_stack:tritonx")
        spec = CampaignSpec(bombs=BOMBS, tools=("tritonx",), jobs=2)
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            report = service.run(service.submit(spec))

        assert report.stats["requeued"] == 1
        assert report.stats["computed"] == 2
        assert report.stats["exhausted"] == 0
        # The killed cell was re-run to its genuine outcome: no cell
        # lost, none duplicated.
        assert set(report.table.cells) == {(b, "tritonx") for b in BOMBS}
        assert report.table.cells[("cp_stack", "tritonx")].label == "ok"

        snap = rec.snapshot()
        counters = snap["counters"]
        assert counters["service.retries"] == 1
        assert counters["service.jobs_requeued"] == 1
        assert counters["service.jobs_completed"] == 2
        # Merged metrics carry exactly one successful attempt per cell:
        # the killed attempt contributed nothing.
        assert snap["spans"]["cell"]["count"] == 2
        assert snap["spans"]["job"]["count"] == 2
        assert counters["vm.instructions"] > 0

    def test_crash_on_every_attempt_exhausts_to_E(self, service, monkeypatch):
        monkeypatch.setenv(KILL_CELL_ENV, "cp_stack:tritonx")
        # retries=0 and the injector kills attempt 1: the only attempt.
        spec = CampaignSpec(bombs=("cp_stack",), tools=("tritonx",),
                            retries=0)
        report = service.run(service.submit(spec))
        assert report.stats["exhausted"] == 1
        cell = report.table.cells[("cp_stack", "tritonx")]
        assert cell.label == "E"
        assert cell.infra_failure
        assert "resource-exhausted" in cell.diagnostic
        # Infrastructure failures are never cached: a later run with the
        # injector gone computes the genuine result.
        monkeypatch.delenv(KILL_CELL_ENV)
        retry = service.run(service.submit(spec))
        assert retry.stats["computed"] == 1
        assert retry.table.cells[("cp_stack", "tritonx")].label == "ok"

    def test_journal_survives_driver_restart(self, service, monkeypatch):
        # First driver exhausts the injected-crash cell; the second
        # (fresh queue replay) picks up only the remaining pending job.
        monkeypatch.setenv(KILL_CELL_ENV, "cp_stack:tritonx")
        spec = CampaignSpec(bombs=BOMBS, tools=("tritonx",), retries=0)
        cid = service.submit(spec)
        report = service.run(cid)
        assert report.stats["exhausted"] == 1
        monkeypatch.delenv(KILL_CELL_ENV)
        again = service.run(cid)
        # Everything is terminal: the rerun performs no work at all.
        assert again.stats["cells"] == 0
        status = service.status(cid)
        assert status["states"]["done"] == 1
        assert status["states"]["exhausted"] == 1


class TestTimeouts:
    def test_serial_timeout_maps_to_E_and_is_not_cached(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = run_table2(bomb_ids=("cf_aes",), tools=("tritonx",),
                            timeout=0.05, cache=store)
        cell = result.cells[("cf_aes", "tritonx")]
        assert cell.label == "E"
        assert cell.infra_failure
        assert "wall-clock timeout" in cell.diagnostic
        assert len(store) == 0
        bomb = get_bomb("cf_aes")
        assert store.get(cell_key(bomb, "tritonx"), bomb) is None

    def test_pool_timeout_maps_to_E(self, service):
        spec = CampaignSpec(bombs=("cf_aes",), tools=("tritonx",),
                            timeout=0.05, jobs=2)
        report = service.run(service.submit(spec))
        assert report.stats["timeouts"] == 1
        assert report.table.cells[("cf_aes", "tritonx")].label == "E"


class TestServiceRoutedTable2:
    def test_cache_and_jobs_route_matches_plain_parallel(self, tmp_path):
        plain = run_table2(bomb_ids=BOMBS, tools=TOOLS, jobs=2)
        routed = run_table2(bomb_ids=BOMBS, tools=TOOLS, jobs=2,
                            cache=str(tmp_path / "store"))
        assert render_table2(plain) == render_table2(routed)
        # Second routed run: all hits, byte-identical JSON.
        rerouted = run_table2(bomb_ids=BOMBS, tools=TOOLS, jobs=2,
                              cache=str(tmp_path / "store"))
        assert json.dumps(routed.to_json()) == json.dumps(rerouted.to_json())
