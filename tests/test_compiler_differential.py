"""Differential fuzzing of the whole compile+execute stack.

Hypothesis generates small arithmetic programs; each is evaluated two
ways — by a Python reference interpreter over the AST we intend, and by
compiling the corresponding BombC source and running it on the VM.
Any divergence is a code-generation or ISA-semantics bug.
"""

from hypothesis import given, settings, strategies as st

from repro.vm import s64, u64

from .helpers import run_bc

MASK64 = (1 << 64) - 1


def _mask_shift(n):
    return n & 63


class _Node:
    """Tiny expression tree with dual evaluation/rendering."""

    def __init__(self, op, left=None, right=None, value=None):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self) -> str:
        if self.op == "const":
            return str(self.value)
        if self.op == "var":
            return "v"
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self, v: int) -> int:
        if self.op == "const":
            return u64(self.value)
        if self.op == "var":
            return u64(v)
        a = self.left.evaluate(v)
        b = self.right.evaluate(v)
        if self.op == "+":
            return u64(a + b)
        if self.op == "-":
            return u64(a - b)
        if self.op == "*":
            return u64(a * b)
        if self.op == "&":
            return a & b
        if self.op == "|":
            return a | b
        if self.op == "^":
            return a ^ b
        if self.op == "<<":
            return u64(a << _mask_shift(b))
        if self.op == ">>":
            return u64(s64(a) >> _mask_shift(b))
        if self.op == ">>>":
            return a >> _mask_shift(b)
        raise AssertionError(self.op)


@st.composite
def expr_trees(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return _Node("var")
        return _Node("const", value=draw(st.integers(-1000, 1000)))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>", ">>>"]))
    left = draw(expr_trees(depth=depth - 1))
    right = draw(expr_trees(depth=depth - 1))
    if op in ("<<", ">>", ">>>"):
        # Keep shift amounts small and non-negative like real code does.
        right = _Node("const", value=draw(st.integers(0, 40)))
    return _Node(op, left, right)


class TestCompilerDifferential:
    @given(tree=expr_trees(), v=st.integers(-5000, 5000))
    @settings(max_examples=30, deadline=None)
    def test_expression_evaluation_matches_reference(self, tree, v):
        expected = tree.evaluate(v) & 0xFF
        source = (
            "int main(int argc, char **argv) {\n"
            "    int v = atoi(argv[1]);\n"
            f"    int r = {tree.render()};\n"
            "    return r & 0xff;\n"
            "}\n"
        )
        result = run_bc(source, argv=[b"t", str(v).encode()])
        assert result.exit_code == expected, (tree.render(), v)

    @given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=6),
           pivot=st.integers(-100, 100))
    @settings(max_examples=15, deadline=None)
    def test_branching_sum_matches_reference(self, values, pivot):
        """A loop with a data-dependent branch, vs Python."""
        expected = sum(x for x in values if x > pivot) & 0xFF
        table = ", ".join(str(v) for v in values)
        source = (
            f"int tab[{len(values)}] = {{{table}}};\n"
            "int main(int argc, char **argv) {\n"
            "    int pivot = atoi(argv[1]);\n"
            "    int total = 0;\n"
            f"    for (int i = 0; i < {len(values)}; i += 1) {{\n"
            "        if (tab[i] > pivot) { total = total + tab[i]; }\n"
            "    }\n"
            "    return total & 0xff;\n"
            "}\n"
        )
        result = run_bc(source, argv=[b"t", str(pivot).encode()])
        assert result.exit_code == expected

    @given(text=st.text(alphabet="0123456789", min_size=1, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_string_length_and_digits(self, text):
        source = (
            "int main(int argc, char **argv) {\n"
            "    int n = strlen(argv[1]);\n"
            "    int digits = 1;\n"
            "    for (int i = 0; i < n; i += 1) {\n"
            "        if (argv[1][i] < '0' || argv[1][i] > '9') { digits = 0; }\n"
            "    }\n"
            "    return n * 10 + digits;\n"
            "}\n"
        )
        result = run_bc(source, argv=[b"t", text.encode()])
        assert result.exit_code == len(text) * 10 + 1
