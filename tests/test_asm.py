"""Tests for the assembler and disassembler."""

import pytest

from repro.asm import assemble, disassemble, format_listing
from repro.binfmt import link
from repro.errors import AsmError, LinkError
from repro.isa import Op

from .helpers import run_asm


class TestAssembler:
    def test_basic_instructions(self):
        module = assemble("""
        .text
        movi r1, 42
        add r1, r2
        ret
        """)
        instrs = list(disassemble(bytes(module.sections[".text"])))
        assert [i.op for i in instrs] == [Op.MOVI, Op.ADD, Op.RET]

    def test_negative_and_hex_immediates(self):
        module = assemble(".text\nmovi r1, -5\nmovi r2, 0xff\n")
        instrs = list(disassemble(bytes(module.sections[".text"])))
        assert instrs[0].operands[1].signed == -5
        assert instrs[1].operands[1].value == 0xFF

    def test_char_immediate(self):
        module = assemble(".text\nmovi r1, 'A'\ncmpi r2, '\\n'\n")
        instrs = list(disassemble(bytes(module.sections[".text"])))
        assert instrs[0].operands[1].value == ord("A")
        assert instrs[1].operands[1].value == ord("\n")

    def test_memory_operands(self):
        module = assemble(".text\nld r1, [r2+8]\nst [sp-16], r3\nld r4, [r5]\n")
        instrs = list(disassemble(bytes(module.sections[".text"])))
        assert instrs[0].operands[1].disp == 8
        assert instrs[1].operands[0].disp == -16
        assert instrs[2].operands[1].disp == 0

    def test_label_on_same_line(self):
        module = assemble(".text\nstart: movi r1, 1\n")
        assert module.symbols["start"] == (".text", 0)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble(".text\nfoo:\nfoo:\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble(".text\nbogus r1, r2\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError, match="expected 2 operands"):
            assemble(".text\nmov r1\n")

    def test_instruction_outside_code_section(self):
        with pytest.raises(AsmError):
            assemble(".data\nmov r1, r2\n")

    def test_comments_and_blank_lines(self):
        module = assemble("""
        ; full line comment
        .text
        movi r1, 1   ; trailing comment
        # hash comment
        """)
        assert len(list(disassemble(bytes(module.sections[".text"])))) == 1

    def test_data_directives(self):
        module = assemble("""
        .data
        a: .byte 1, 2, 0xff
        .align 4
        b: .word 258
        c: .long 70000
        d: .quad 1, 2
        """)
        data = bytes(module.sections[".data"])
        assert data[:3] == b"\x01\x02\xff"
        assert module.symbols["b"] == (".data", 4)

    def test_asciz_with_escapes(self):
        module = assemble('.rodata\ns: .asciz "a\\n\\x41\\0b"\n')
        assert bytes(module.sections[".rodata"]) == b"a\nAb\0"[:3] + b"\x00b\x00"

    def test_space_and_bss(self):
        module = assemble(".bss\nbuf: .space 64\nafter:\n")
        assert module.bss_size == 64
        assert module.symbols["after"] == (".bss", 64)

    def test_quad_with_symbol_reloc(self):
        module = assemble(".data\ntable: .quad target, 5\n.text\ntarget: ret\n")
        relocs = [r for r in module.relocs if r.symbol == "target"]
        assert len(relocs) == 1 and relocs[0].kind == "abs64"

    def test_movi_symbol_plus_addend(self):
        module = assemble(".text\nmovi r1, foo+8\nfoo: ret\n")
        (reloc,) = module.relocs
        assert reloc.addend == 8


class TestEndToEnd:
    def test_loop_program(self):
        result = run_asm("""
        .text
        .global _start
        _start:
            movi r1, 0
            movi r2, 10
        .Lloop:
            add r1, r2
            subi r2, 1
            cmpi r2, 0
            jnz .Lloop
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == 55

    def test_forward_and_backward_branches(self):
        result = run_asm("""
        .text
        .global _start
        _start:
            movi r1, 1
            jmp .Lfwd
            movi r1, 99
        .Lfwd:
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == 1

    def test_format_listing(self):
        module = assemble(".text\nf: movi r1, 1\nret\n")
        image = link([module], entry="f")
        sec = image.section(".text")
        text = format_listing(sec.data, sec.vaddr, image.symbols_by_addr())
        assert "f:" in text and "movi r1, 1" in text


class TestDisassembler:
    def test_stops_at_invalid(self):
        instrs = list(disassemble(b"\x00\xff\x00", 0))
        assert len(instrs) == 1  # nop, then invalid opcode stops the sweep

    def test_empty(self):
        assert list(disassemble(b"", 0)) == []
