"""Tests for the BombC compiler: lexer, parser, and compile-and-run
golden tests covering every language feature the bombs rely on."""

import pytest

from repro.errors import CompileError
from repro.lang import parse, tokenize
from repro.lang import cast as A

from .helpers import run_bc


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("42 0x2A 3.5 1e3 0")
        assert [t.value for t in tokens[:-1]] == [42, 42, 3.5, 1000.0, 0]

    def test_char_and_string(self):
        tokens = tokenize("'A' '\\n' \"hi\\x21\"")
        assert tokens[0].value == 65
        assert tokens[1].value == 10
        assert tokens[2].value == b"hi!"

    def test_operators_longest_match(self):
        tokens = tokenize("a >>> b >> c >= d")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == [">>>", ">>", ">="]

    def test_comments(self):
        tokens = tokenize("a // line\n/* block\nstill */ b")
        idents = [t.text for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"oops')


class TestParser:
    def test_function_shape(self):
        unit = parse("int f(int a, char *b) { return a; }")
        (fn,) = unit.functions
        assert fn.name == "f"
        assert fn.params[0].type == A.INT
        assert fn.params[1].type == A.CType("char", 1)

    def test_globals(self):
        unit = parse('int g = 5; int tab[3] = {1, 2, 3}; char *s = "x";')
        assert [g.name for g in unit.globals] == ["g", "tab", "s"]
        assert unit.globals[1].type.array == 3

    def test_precedence(self):
        unit = parse("int f() { return 1 + 2 * 3 == 7 && 1 < 2; }")
        expr = unit.functions[0].body[0].value
        assert isinstance(expr, A.Binary) and expr.op == "&&"

    def test_else_if_chain(self):
        unit = parse("int f(int x) { if (x) { return 1; } else if (x > 2) { return 2; } else { return 3; } }")
        stmt = unit.functions[0].body[0]
        assert isinstance(stmt.orelse[0], A.If)

    def test_lvalue_check(self):
        with pytest.raises(CompileError, match="lvalue"):
            parse("int f() { 1 + 2 = 3; return 0; }")

    def test_pointer_depth(self):
        unit = parse("int main(int argc, char **argv) { return 0; }")
        assert unit.functions[0].params[1].type.ptr == 2


class TestCodegenGolden:
    """Compile-and-run with expected stdout/exit codes."""

    def _expect(self, body, stdout=None, exit_code=None, argv=None):
        result = run_bc(body, argv=argv or [b"t"])
        if stdout is not None:
            assert result.stdout == stdout, result.stdout
        if exit_code is not None:
            assert result.exit_code == exit_code

    def test_arithmetic_precedence(self):
        self._expect("int main(int argc, char **argv) { return 2 + 3 * 4; }",
                     exit_code=14)

    def test_division_and_modulo(self):
        self._expect(
            "int main(int argc, char **argv) {"
            " print_int(-17 / 5); print_str(\" \"); print_int(-17 % 5);"
            " return 0; }",
            stdout=b"-3 -2",
        )

    def test_shifts(self):
        self._expect(
            "int main(int argc, char **argv) {"
            " print_int(1 << 10); print_str(\" \");"
            " print_int(-8 >> 1); print_str(\" \");"
            " print_int((15 >>> 2)); return 0; }",
            stdout=b"1024 -4 3",
        )

    def test_bitwise(self):
        self._expect(
            "int main(int argc, char **argv) {"
            " print_int((12 & 10) | (1 ^ 3)); print_int(~0 & 255); return 0; }",
            stdout=b"10255",
        )

    def test_short_circuit(self):
        self._expect(r'''
            int calls = 0;
            int bump() { calls = calls + 1; return 1; }
            int main(int argc, char **argv) {
                int a = 0 && bump();
                int b = 1 || bump();
                print_int(calls);
                print_int(a + b);
                return 0;
            }
        ''', stdout=b"01")

    def test_compound_assignment(self):
        self._expect(
            "int main(int argc, char **argv) {"
            " int x = 10; x += 5; x *= 2; x -= 6; x /= 4; x <<= 2;"
            " return x; }",
            exit_code=24,
        )

    def test_while_break_continue(self):
        self._expect(r'''
            int main(int argc, char **argv) {
                int total = 0;
                int i = 0;
                while (1) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2) { continue; }
                    total = total + i;
                }
                return total;   // 2+4+6+8+10
            }
        ''', exit_code=30)

    def test_for_loop(self):
        self._expect(r'''
            int main(int argc, char **argv) {
                int total = 0;
                for (int i = 1; i <= 5; i += 1) { total = total + i; }
                return total;
            }
        ''', exit_code=15)

    def test_arrays_and_pointers(self):
        self._expect(r'''
            int tab[4] = {10, 20, 30, 40};
            int main(int argc, char **argv) {
                int *p = &tab[1];
                *p = 99;
                print_int(tab[1]);
                print_int(*(p + 2));
                print_int((int)(&tab[3] - &tab[0]));
                return 0;
            }
        ''', stdout=b"99403")

    def test_local_array(self):
        self._expect(r'''
            int main(int argc, char **argv) {
                char buf[8];
                int i = 0;
                while (i < 5) { buf[i] = 'a' + i; i = i + 1; }
                buf[5] = 0;
                print_str(buf);
                return 0;
            }
        ''', stdout=b"abcde")

    def test_char_semantics(self):
        self._expect(r'''
            int main(int argc, char **argv) {
                char c = 200;       // stored as a byte, loaded unsigned
                print_int(c);
                return 0;
            }
        ''', stdout=b"200")

    def test_float_double(self):
        self._expect(r'''
            int main(int argc, char **argv) {
                double d = 2.5 * 4.0;
                float f = 0.5;
                print_int((int)(d + (double)f));
                print_int((int)(d / 2.0));
                return 0;
            }
        ''', stdout=b"105")

    def test_float_compare(self):
        self._expect(r'''
            int main(int argc, char **argv) {
                double a = 1.5;
                if (a > 1.0 && a <= 1.5 && a != 2.0) { print_str("yes"); }
                return 0;
            }
        ''', stdout=b"yes")

    def test_negative_float(self):
        self._expect(
            "int main(int argc, char **argv) {"
            " double x = -2.5; return (int)(x * -2.0); }",
            exit_code=5,
        )

    def test_recursion(self):
        self._expect(r'''
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main(int argc, char **argv) { return fib(10); }
        ''', exit_code=55)

    def test_function_pointer_via_int(self):
        self._expect(r'''
            int add3(int x) { return x + 3; }
            int main(int argc, char **argv) {
                int fp = add3;          // functions decay to addresses
                return __syscall(0, fp != 0);
            }
        ''', exit_code=1)

    def test_global_init_forms(self):
        self._expect(r'''
            int a = -7;
            char c = 'Z';
            double d = 1.5;
            char *s = "str";
            int main(int argc, char **argv) {
                print_int(a);
                putchar(c);
                print_int((int)(d * 2.0));
                print_str(s);
                return 0;
            }
        ''', stdout=b"-7Z3str")

    def test_stack_builtins(self):
        self._expect(
            "int main(int argc, char **argv) {"
            " __stackpush(41); return __stackpop() + 1; }",
            exit_code=42,
        )


class TestCodegenErrors:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined"):
            run_bc("int main(int argc, char **argv) { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            run_bc("int main(int argc, char **argv) { return nada(); }")

    def test_duplicate_local(self):
        with pytest.raises(CompileError, match="duplicate local"):
            run_bc("int main(int argc, char **argv) { int x = 1; int x = 2; return x; }")

    def test_arity_mismatch(self):
        with pytest.raises(CompileError, match="expects"):
            run_bc("int f(int a) { return a; } int main(int argc, char **argv) { return f(1, 2); }")

    def test_float_modulo_rejected(self):
        with pytest.raises(CompileError):
            run_bc("int main(int argc, char **argv) { double d = 1.5 % 2.0; return 0; }")
