"""Declarative campaign specs: parsing, selectors, validation, quotas.

A spec document is the fleet's submission contract — the same JSON
shape is accepted as a file (``campaign submit --spec``), as TOML, and
as an HTTP POST body — so the validator's strictness is what stands
between a typo and a wasted fleet-hour.
"""

import json

import pytest

from repro import obs
from repro.bombs import TABLE2_BOMB_IDS, all_bombs
from repro.service import (
    CampaignService,
    CampaignSpec,
    QuotaExceeded,
    SpecError,
    build_spec,
    check_quota,
    load_quotas,
    load_spec_file,
    parse_spec_text,
)
from repro.service.spec import bomb_level, resolve_bombs, resolve_tools

ALL_IDS = [b.bomb_id for b in all_bombs()]


class TestParsing:
    def test_json_and_toml_parse_to_the_same_document(self):
        doc = {"name": "n", "bombs": ["cp_stack"], "tools": ["tritonx"],
               "timeout": 5.0}
        toml = ('name = "n"\nbombs = ["cp_stack"]\n'
                'tools = ["tritonx"]\ntimeout = 5.0\n')
        assert parse_spec_text(json.dumps(doc), "json") == doc
        assert parse_spec_text(toml, "toml") == doc

    def test_malformed_text_is_a_spec_error_not_a_traceback(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            parse_spec_text("{nope", "json")
        with pytest.raises(SpecError, match="invalid TOML"):
            parse_spec_text("= broken", "toml")
        with pytest.raises(SpecError, match="unknown spec format"):
            parse_spec_text("{}", "yaml")
        with pytest.raises(SpecError, match="table/object"):
            parse_spec_text("[1, 2]", "json")

    def test_load_spec_file_dispatches_on_extension(self, tmp_path):
        jpath = tmp_path / "run.json"
        jpath.write_text(json.dumps({"bombs": ["cp_stack"],
                                     "tools": ["tritonx"]}))
        tpath = tmp_path / "run.toml"
        tpath.write_text('bombs = ["cp_stack"]\ntools = ["tritonx"]\n')
        assert load_spec_file(jpath) == load_spec_file(tpath)
        with pytest.raises(SpecError, match="cannot read"):
            load_spec_file(tmp_path / "absent.json")


class TestSelectors:
    def test_default_selection_is_the_paper_matrix(self):
        spec = build_spec({})
        assert spec.bombs == tuple(TABLE2_BOMB_IDS)

    def test_keywords_globs_and_exact_ids_compose(self):
        assert resolve_bombs(["table2"], []) == list(TABLE2_BOMB_IDS)
        assert resolve_bombs(["all"], []) == ALL_IDS
        globbed = resolve_bombs(["cp_*"], [])
        assert globbed and all(b.startswith("cp_") for b in globbed)
        assert resolve_bombs(["cp_stack"], []) == ["cp_stack"]

    def test_selection_is_dataset_ordered_and_deduped(self):
        # Mention order scrambled, entries overlapping: the resolved
        # list must still follow dataset order so campaign ids (and
        # rendered tables) stay byte-stable.
        spec_ids = resolve_bombs(["cp_stack", "sv_*", "cp_*", "cp_stack"], [])
        assert spec_ids == [b for b in ALL_IDS if b in set(spec_ids)]
        assert len(spec_ids) == len(set(spec_ids))

    def test_levels_filter_uses_the_id_embedded_level(self):
        assert bomb_level("sa_l2_array") == 2
        assert bomb_level("cp_stack") == 1
        level2 = resolve_bombs(["all"], [2])
        assert level2 and all(bomb_level(b) == 2 for b in level2)
        with pytest.raises(SpecError, match="leaves no bombs"):
            resolve_bombs(["cp_stack"], [7])

    def test_unmatched_selectors_name_the_field(self):
        with pytest.raises(SpecError, match="bombs: pattern"):
            resolve_bombs(["zz_*"], [])
        with pytest.raises(SpecError, match="bombs: unknown id"):
            resolve_bombs(["cp_stark"], [])
        with pytest.raises(SpecError, match="tools"):
            resolve_tools(["ghidra"])

    def test_tool_keyword_all_is_the_table_columns(self):
        from repro.bombs import TOOL_COLUMNS

        assert resolve_tools(["all"]) == list(TOOL_COLUMNS)
        assert resolve_tools(["tritonx"]) == ["tritonx"]

    def test_new_tool_columns_resolve_with_no_spec_edits(self):
        # The tools universe and the "all" keyword derive from the live
        # TOOL_COLUMNS registry at resolve time, so a new Table II
        # column is selectable by exact id, by glob, and via "all"
        # without any change to the spec layer.
        from repro.bombs import TOOL_COLUMNS

        assert "sandshrewx" in TOOL_COLUMNS and "hybridx" in TOOL_COLUMNS
        assert resolve_tools(["sandshrewx", "hybridx"]) == \
            ["sandshrewx", "hybridx"]
        assert resolve_tools(["*shrewx", "hybrid*"]) == \
            ["sandshrewx", "hybridx"]
        assert "hybridx" in resolve_tools(["all"])
        spec = build_spec({"bombs": ["cf_sha1"],
                           "tools": ["sandshrewx", "hybridx"]})
        assert spec.tools == ("sandshrewx", "hybridx")


class TestValidation:
    def test_unknown_keys_are_rejected_by_name(self):
        with pytest.raises(SpecError, match="unknown spec key.*bmobs"):
            build_spec({"bmobs": ["cp_stack"]})

    @pytest.mark.parametrize("doc,field", [
        ({"jobs": -1}, "jobs"),
        ({"jobs": True}, "jobs"),
        ({"timeout": 0}, "timeout"),
        ({"timeout": "60"}, "timeout"),
        ({"retries": -1}, "retries"),
        ({"levels": [1, "2"]}, "levels"),
        ({"name": 7}, "name"),
        ({"bombs": 3}, "bombs"),
        ({"bombs": [3]}, "bombs"),
    ])
    def test_type_errors_name_the_offending_field(self, doc, field):
        with pytest.raises(SpecError, match=field):
            build_spec(doc)

    def test_valid_document_resolves_to_a_campaign_spec(self):
        spec = build_spec({"name": "nightly", "tenant": "ci",
                           "bombs": ["cp_stack", "sv_time"],
                           "tools": ["tritonx"], "jobs": 2,
                           "timeout": 30, "retries": 1})
        assert isinstance(spec, CampaignSpec)
        assert spec.tenant == "ci"
        assert spec.timeout == 30.0
        assert len(spec.cells()) == 2

    def test_scalar_selector_strings_are_promoted_to_lists(self):
        spec = build_spec({"bombs": "cp_stack", "tools": "tritonx"})
        assert spec.bombs == ("cp_stack",) and spec.tools == ("tritonx",)


class TestQuotas:
    def write_quotas(self, root, doc):
        root.mkdir(parents=True, exist_ok=True)
        (root / "quotas.json").write_text(json.dumps(doc))

    def test_absent_or_unlimited_quotas_never_reject(self, tmp_path):
        service = CampaignService(tmp_path / "svc")
        assert load_quotas(service.root) == {}
        spec = build_spec({"bombs": ["cp_stack"], "tools": ["tritonx"]})
        check_quota(service, spec)  # no quotas.json: no limits

    def test_over_quota_submit_is_rejected_and_counted(self, tmp_path):
        service = CampaignService(tmp_path / "svc")
        self.write_quotas(service.root,
                          {"default": {"max_pending_cells": 1}})
        spec = build_spec({"bombs": ["cp_stack", "sv_time"],
                           "tools": ["tritonx"]})
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            with pytest.raises(QuotaExceeded, match="exceeds quota of 1"):
                service.submit(spec)
        assert rec.snapshot()["counters"]["service.quota_rejected"] == 1
        assert service.campaigns() == []  # nothing was enqueued

    def test_outstanding_cells_count_against_the_same_tenant_only(
            self, tmp_path):
        service = CampaignService(tmp_path / "svc")
        self.write_quotas(service.root, {
            "tenants": {"ci": {"max_pending_cells": 2}},
            "default": {"max_pending_cells": 100},
        })
        one = build_spec({"tenant": "ci", "bombs": ["cp_stack"],
                          "tools": ["tritonx"]})
        service.submit(one)           # ci: 1 outstanding
        service.submit(one)           # ci: 2 outstanding — at the cap
        with pytest.raises(QuotaExceeded):
            service.submit(one)
        # A different tenant's budget is untouched by ci's backlog.
        other = build_spec({"tenant": "dev", "bombs": ["cp_stack"],
                            "tools": ["tritonx"]})
        service.submit(other)

    def test_completed_cells_release_quota(self, tmp_path):
        service = CampaignService(tmp_path / "svc")
        self.write_quotas(service.root,
                          {"default": {"max_pending_cells": 1}})
        spec = build_spec({"bombs": ["cp_stack"], "tools": ["tritonx"]})
        cid = service.submit(spec)
        with pytest.raises(QuotaExceeded):
            service.submit(spec)
        service.run(cid)              # drains the outstanding cell
        service.submit(spec)          # budget is free again

    def test_malformed_quota_file_is_a_spec_error(self, tmp_path):
        service = CampaignService(tmp_path / "svc")
        self.write_quotas(service.root,
                          {"default": {"max_pending_cells": -3}})
        with pytest.raises(SpecError, match="max_pending_cells"):
            load_quotas(service.root)
