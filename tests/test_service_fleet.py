"""Fleet workers: lease-based claims, crash recovery, no double-execution.

The acceptance criteria under test (ISSUE 7):

* two concurrent claimants over one shared journal never double-claim
  (and therefore never double-run) a cell;
* a worker SIGKILLed mid-cell loses its lease; a surviving worker
  requeues the expired claim and completes the campaign, and the
  fleet-produced store renders byte-identically to a single-process
  run;
* a stalled worker that outlives its lease discards its stale terminal
  transition (``service.lease_lost``) instead of double-completing;
* ``--jobs 0`` sizes the pack to the host's usable CPUs.
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro import obs
from repro.eval import render_table2
from repro.service import (
    KILL_CELL_ENV,
    CampaignService,
    CampaignSpec,
    FleetQueue,
    FleetWorker,
    auto_jobs,
    run_worker,
)
from repro.service.executor import _mp_context
from repro.service.queue import CLAIMED, DONE, PENDING, JobQueue

BOMBS = ("cp_stack", "sv_time")


def make_queue(tmp_path, n_jobs=4):
    path = tmp_path / "queue.jsonl"
    seed = JobQueue(path)
    seed.submit([(f"bomb{i}", "tool") for i in range(n_jobs)])
    seed.close()
    return path


class TestFleetQueue:
    def test_claims_are_disjoint_and_mutually_visible(self, tmp_path):
        path = make_queue(tmp_path)
        alpha = FleetQueue(path, "alpha")
        beta = FleetQueue(path, "beta")
        a = alpha.claim_leased()
        b = beta.claim_leased()
        assert a.job_id != b.job_id
        # Each side sees the other's claim after its next locked refresh.
        with alpha._lock.held():
            alpha.refresh()
        assert alpha.jobs[b.job_id].worker == "beta"
        assert alpha.jobs[b.job_id].status == CLAIMED

    def test_refresh_is_incremental_and_idempotent(self, tmp_path):
        path = make_queue(tmp_path)
        queue = FleetQueue(path, "alpha")
        job = queue.claim_leased()
        queue.finish_leased(job, "complete", result="computed")
        before = dict(queue.jobs[job.job_id].__dict__)
        # Re-applying our own already-folded records must converge.
        queue._offset = 0
        queue.refresh()
        assert dict(queue.jobs[job.job_id].__dict__) == before

    def test_expired_lease_is_swept_and_reclaimed(self, tmp_path):
        path = make_queue(tmp_path, n_jobs=1)
        now = [1000.0]
        dead = FleetQueue(path, "dead", lease_s=5.0, clock=lambda: now[0])
        job = dead.claim_leased()
        assert job.lease_until == 1005.0
        survivor = FleetQueue(path, "survivor", lease_s=5.0,
                              clock=lambda: now[0])
        assert survivor.claim_leased() is None  # lease still live
        now[0] = 1006.0
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            reclaimed = survivor.claim_leased()
        assert reclaimed is not None and reclaimed.job_id == job.job_id
        assert reclaimed.worker == "survivor"
        assert reclaimed.attempts == 2
        counters = rec.snapshot()["counters"]
        assert counters["service.lease_expired"] == 1
        assert counters["service.requeues"] == 1

    def test_renewal_keeps_a_long_cell_alive(self, tmp_path):
        path = make_queue(tmp_path, n_jobs=1)
        now = [0.0]
        holder = FleetQueue(path, "holder", lease_s=5.0,
                            clock=lambda: now[0])
        job = holder.claim_leased()
        now[0] = 4.0
        holder.renew_lease(job)          # heartbeat at t=4: lease to t=9
        now[0] = 6.0                     # past the original deadline
        rival = FleetQueue(path, "rival", lease_s=5.0, clock=lambda: now[0])
        assert rival.claim_leased() is None
        assert rival.jobs[job.job_id].worker == "holder"

    def test_stalled_worker_drops_its_stale_transition(self, tmp_path):
        path = make_queue(tmp_path, n_jobs=1)
        now = [0.0]
        stalled = FleetQueue(path, "stalled", lease_s=5.0,
                             clock=lambda: now[0])
        job = stalled.claim_leased()
        now[0] = 10.0                    # stalled far past its lease
        rival = FleetQueue(path, "rival", lease_s=5.0, clock=lambda: now[0])
        taken = rival.claim_leased()
        assert taken.worker == "rival"
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            landed = stalled.finish_leased(job, "complete",
                                           result="computed")
        assert landed is False           # the survivor owns the job now
        assert rec.snapshot()["counters"]["service.lease_lost"] == 1
        assert rival.finish_leased(taken, "complete", result="computed")
        with stalled._lock.held():
            stalled.refresh()
        assert stalled.jobs[job.job_id].status == DONE


def _hammer(path, worker_id, out_path):
    """Claim-and-complete loop for the concurrency test (forked)."""
    queue = FleetQueue(path, worker_id)
    claimed = []
    while True:
        job = queue.claim_leased()
        if job is None:
            with queue._lock.held():
                queue.refresh()
            if not any(j.status in (PENDING, CLAIMED)
                       for j in queue.jobs.values()):
                break
            time.sleep(0.001)
            continue
        claimed.append(job.job_id)
        queue.finish_leased(job, "complete", result="computed")
    Path(out_path).write_text(json.dumps(claimed))


class TestNoDoubleExecution:
    def test_concurrent_claimants_partition_the_queue_exactly(
            self, tmp_path):
        n_jobs, n_workers = 40, 4
        path = make_queue(tmp_path, n_jobs=n_jobs)
        ctx = _mp_context()
        procs, outs = [], []
        for i in range(n_workers):
            out = tmp_path / f"claims.{i}.json"
            outs.append(out)
            procs.append(ctx.Process(
                target=_hammer, args=(str(path), f"w{i}", str(out))))
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
            assert proc.exitcode == 0
        claims = [json.loads(out.read_text()) for out in outs]
        flat = [job_id for per_worker in claims for job_id in per_worker]
        # Every job ran exactly once across the whole fleet: full
        # coverage, zero overlap.
        assert len(flat) == n_jobs
        assert len(set(flat)) == n_jobs
        final = JobQueue(path, recover_claims=False)
        assert all(j.status == DONE for j in final.jobs.values())
        final.close()


class TestFleetWorker:
    def test_drain_completes_a_campaign_like_a_single_process_run(
            self, tmp_path):
        fleet_svc = CampaignService(tmp_path / "fleet")
        spec = CampaignSpec(bombs=BOMBS, tools=("tritonx",))
        cid = fleet_svc.submit(spec)
        stats = FleetWorker(tmp_path / "fleet", worker_id="w0",
                            poll_s=0.01).run(drain=True)
        assert stats.computed == 2 and stats.lease_lost == 0
        status = fleet_svc.status(cid)
        assert status["states"]["done"] == 2

        solo_svc = CampaignService(tmp_path / "solo")
        solo = solo_svc.run(solo_svc.submit(spec))
        assert render_table2(fleet_svc.results(cid)) == \
            render_table2(solo.table)

    def test_worker_serves_warm_store_without_recomputing(self, tmp_path):
        service = CampaignService(tmp_path / "svc")
        spec = CampaignSpec(bombs=("cp_stack",), tools=("tritonx",))
        service.run(service.submit(spec))          # warms the store
        cid = service.submit(spec)
        stats = FleetWorker(tmp_path / "svc", worker_id="w0",
                            poll_s=0.01).run(drain=True)
        assert stats.cached == 1 and stats.computed == 0
        assert service.status(cid)["results"] == {"cached": 1}

    def test_injected_crash_is_retried_to_the_genuine_result(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(KILL_CELL_ENV, "cp_stack:tritonx")
        service = CampaignService(tmp_path / "svc")
        cid = service.submit(CampaignSpec(bombs=("cp_stack",),
                                          tools=("tritonx",), retries=2))
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            stats = FleetWorker(tmp_path / "svc", worker_id="w0",
                                poll_s=0.01, backoff=0.01).run(drain=True)
        assert stats.requeued == 1 and stats.computed == 1
        counters = rec.snapshot()["counters"]
        assert counters["service.retries"] == 1
        assert counters["service.requeues"] == 1
        table = service.results(cid)
        assert table.cells[("cp_stack", "tritonx")].label == "ok"

    def test_crash_past_retries_exhausts(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KILL_CELL_ENV, "cp_stack:tritonx")
        service = CampaignService(tmp_path / "svc")
        cid = service.submit(CampaignSpec(bombs=("cp_stack",),
                                          tools=("tritonx",), retries=0))
        stats = FleetWorker(tmp_path / "svc", worker_id="w0",
                            poll_s=0.01).run(drain=True)
        assert stats.exhausted == 1
        assert service.status(cid)["states"]["exhausted"] == 1

    def test_auto_jobs_is_a_positive_cpu_count(self):
        n = auto_jobs()
        assert isinstance(n, int) and n >= 1


class TestSigkillRecovery:
    def test_sigkilled_workers_cell_is_requeued_and_completed(
            self, tmp_path):
        """The ISSUE's headline scenario, with a real SIGKILL.

        A worker process is killed -9 mid-cell; its lease expires; a
        surviving worker requeues the claim, completes every cell, and
        the assembled results render identically to an untouched
        single-process run.
        """
        root = tmp_path / "fleet"
        service = CampaignService(root)
        spec = CampaignSpec(bombs=BOMBS, tools=("tritonx",))
        cid = service.submit(spec)
        journal = service._campaign_dir(cid) / "queue.jsonl"

        ctx = _mp_context()
        doomed = ctx.Process(
            target=run_worker, args=(str(root),),
            kwargs={"worker_id": "doomed", "lease_s": 0.5,
                    "poll_s": 0.01, "drain": True})
        doomed.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if journal.exists() and '"t":"claim"' in journal.read_text():
                break
            time.sleep(0.005)
        else:
            pytest.fail("doomed worker never claimed a cell")
        os.kill(doomed.pid, signal.SIGKILL)
        doomed.join()

        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            stats = FleetWorker(root, worker_id="survivor", lease_s=0.5,
                                poll_s=0.01).run(drain=True)
        counters = rec.snapshot()["counters"]
        assert counters["service.lease_expired"] >= 1
        assert counters["service.requeues"] >= 1
        assert stats.lease_lost == 0

        status = service.status(cid)
        assert status["states"]["done"] == 2
        assert status["states"]["pending"] == 0
        # No cell lost, none double-run: one terminal record per job.
        done_records = [json.loads(line)
                        for line in journal.read_text().splitlines()
                        if '"t":"done"' in line]
        assert len(done_records) == 2
        assert len({r["id"] for r in done_records}) == 2

        solo_svc = CampaignService(tmp_path / "solo")
        solo = solo_svc.run(solo_svc.submit(spec))
        assert render_table2(service.results(cid)) == \
            render_table2(solo.table)
        # Byte-identical reassembly from the fleet-produced store.
        assert json.dumps(service.results(cid).to_json()) == \
            json.dumps(service.results(cid).to_json())
