"""Smoke tests: the example scripts must run end to end.

The slowest examples (REXX-driven) are exercised through their fast
paths; `quickstart` and `build_your_own_bomb` run in full.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "ACCESS GRANTED" in result.stdout
        assert "password" in result.stdout

    def test_build_your_own_bomb(self):
        result = _run("build_your_own_bomb.py")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "oracle verified" in result.stdout
        assert "solved=False" in result.stdout  # the combo defeats them

    def test_logic_bomb_audit_subset(self):
        result = _run("logic_bomb_audit.py", "tritonx", "sv_time", "cp_stack")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "Es0" in result.stdout
        assert "ok" in result.stdout

    def test_deobfuscation(self):
        result = _run("deobfuscation.py")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "OPAQUE" in result.stdout
        assert "real" in result.stdout
