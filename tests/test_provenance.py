"""Tests for the provenance layer: collector, scoping, UNSAT cores,
and the Figure 3 differential as a per-instruction provenance chain.

Forensics are off by default — nothing installs a collector unless a
test (or ``repro explain``) asks for one — so the first test class
pins the off-state, then the rest exercise each record kind and the
end-to-end wiring through the taint replayer and the concolic engine.
"""

import pytest

from repro import obs
from repro.obs import provenance
from repro.obs.provenance import CoreMember, ProvenanceCollector
from repro.errors import SolverError
from repro.smt import mk_cmp, mk_const, mk_eq, mk_var, unsat_core

from .helpers import compile_bc


@pytest.fixture(autouse=True)
def _no_leaked_collector():
    assert provenance.active() is None
    yield
    assert provenance.active() is None


class TestCollector:
    def test_off_by_default(self):
        assert provenance.active() is None

    def test_taint_aggregates_per_pc(self):
        prov = ProvenanceCollector()
        prov.record_taint(0x100, "add", 7)
        prov.record_taint(0x104, "cmp", 9)
        prov.record_taint(0x100, "add", 21)
        assert prov.instances == 3
        chain = prov.chain()
        assert [r.pc for r in chain] == [0x100, 0x104]  # first-seen order
        assert chain[0].hits == 2 and chain[0].first_index == 7
        assert chain[1].hits == 1 and chain[1].first_index == 9

    def test_introduce_and_drop_partition_events(self):
        prov = ProvenanceCollector()
        prov.introduce("argv[1] declared", pc=None)
        prov.drop("taint-lost", "strlen concretized", pc=0x200, stage="Es2")
        assert [e.kind for e in prov.events] == ["introduce", "drop"]
        assert len(prov.introductions) == 1
        (drop,) = prov.drops
        assert drop.cause == "taint-lost" and drop.stage == "Es2"
        assert drop.pc == 0x200

    def test_cores_and_snapshot(self):
        prov = ProvenanceCollector()
        prov.record_core(0x300, [CoreMember(0x2f0, "branch", "(x < 5)")])
        snap = prov.snapshot()
        assert snap["cores"] == [{"pc": 0x300, "members": [
            {"pc": 0x2f0, "kind": "branch", "expr": "(x < 5)"}]}]
        assert snap["taint"] == [] and snap["instances"] == 0

    def test_collecting_scopes_and_restores(self):
        outer = ProvenanceCollector()
        with provenance.collecting(outer) as prov:
            assert provenance.active() is prov is outer
            with provenance.collecting() as inner:
                assert provenance.active() is inner
                assert inner is not outer
            assert provenance.active() is outer
        assert provenance.active() is None

    def test_collecting_flushes_prov_counters(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            with provenance.collecting() as prov:
                prov.record_taint(0x10, "add", 0)
                prov.record_taint(0x10, "add", 1)
                prov.introduce("argv")
                prov.drop("taint-lost", "gone")
                prov.record_core(None, [])
        counters = rec.counters
        assert counters["prov.taint_pcs"] == 1
        assert counters["prov.taint_instances"] == 2
        assert counters["prov.introduced"] == 1
        assert counters["prov.drops"] == 1
        assert counters["prov.unsat_cores"] == 1

    def test_empty_collector_flushes_nothing(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            with provenance.collecting():
                pass
        assert not [k for k in rec.counters if k.startswith("prov.")]


class TestUnsatCore:
    def test_minimizes_to_the_contradicting_pair(self):
        x = mk_var("uc_x", 8)
        y = mk_var("uc_y", 8)
        tagged = [
            ("lo", mk_cmp("ult", x, mk_const(5, 8))),
            ("irrelevant", mk_eq(y, mk_const(3, 8))),
            ("hi", mk_cmp("ult", mk_const(10, 8), x)),
        ]
        core = unsat_core(tagged)
        assert sorted(core) == ["hi", "lo"]

    def test_satisfiable_returns_none(self):
        x = mk_var("uc_s", 8)
        assert unsat_core([("only", mk_cmp("ult", x, mk_const(5, 8)))]) is None

    def test_const_false_is_its_own_core(self):
        assert unsat_core([("t", mk_const(1, 1)),
                           ("f", mk_const(0, 1))]) == ["f"]

    def test_counts_core_queries(self):
        x = mk_var("uc_q", 8)
        rec = obs.Recorder()
        with obs.recording(rec):
            unsat_core([("lo", mk_cmp("ult", x, mk_const(5, 8))),
                        ("hi", mk_cmp("ult", mk_const(10, 8), x))])
        assert rec.counters["prov.core_queries"] >= 1

    def test_budget_exhaustion_raises(self):
        x = mk_var("uc_b", 32)
        y = mk_var("uc_b2", 32)
        product = mk_cmp("ult", mk_const(7, 32), x)
        with pytest.raises(SolverError):
            unsat_core([("a", product), ("b", mk_eq(x, y))],
                       max_conflicts=100_000, max_clauses=1)


class TestFigure3Provenance:
    """Figure 3's 5 -> 66 blow-up, witnessed instruction by instruction."""

    def _summary(self, variant: str):
        from repro.bombs import get_bomb
        from repro.trace import taint_summary

        bomb = get_bomb(variant)
        with provenance.collecting() as prov:
            summary = taint_summary(bomb.image, [variant.encode(), b"77"],
                                    bomb.base_env())
        assert summary.provenance is prov
        return summary, prov

    def test_chain_accounts_for_every_tainted_instruction(self):
        off_sum, off = self._summary("fig3_printf_off")
        on_sum, on = self._summary("fig3_printf_on")
        # The provenance chain and the Figure 3 counter are the same
        # measurement: instance totals must agree exactly per variant.
        assert off.instances == off_sum.tainted_instructions
        assert on.instances == on_sum.tainted_instructions
        assert sum(r.hits for r in off.chain()) == off.instances
        assert sum(r.hits for r in on.chain()) == on.instances
        # The blow-up is attributable: the printf variant's chain is a
        # strict superset in PC count and the delta matches the figure.
        assert len(on.taint) > len(off.taint)
        extra = on_sum.tainted_instructions - off_sum.tainted_instructions
        assert on.instances - off.instances == extra
        assert extra > 30  # paper: +61, ours: +37

    def test_both_variants_introduce_the_symbolic_argv(self):
        _, off = self._summary("fig3_printf_off")
        assert any("argv[1]" in e.detail for e in off.introductions)


class TestEngineCores:
    """An impossible guard names itself: the engine explains UNSAT
    negations with a minimized core when forensics are on."""

    SOURCE = """
    int main(int argc, char **argv) {
        int v = atoi(argv[1]);
        if (v * v == 0 - 1) { bomb(); }
        return 0;
    }
    """

    def _run(self):
        from repro.concolic import ConcolicEngine
        from repro.tools.profiles import TRITONX

        image = compile_bc(self.SOURCE)
        with provenance.collecting() as prov:
            report = ConcolicEngine(TRITONX).run(image, [b"1"], argv0=b"x")
        return report, prov

    def test_core_names_the_squaring_guard(self):
        report, prov = self._run()
        assert not report.solved  # squares are never -1
        assert prov.cores, "the refused negation must leave a core"
        core = prov.cores[0]
        # Deletion-minimized: the negated guard alone is contradictory,
        # so the core is exactly that one member — the squaring compare.
        assert len(core.members) == 1
        (member,) = core.members
        assert member.kind == "negation"
        assert member.pc == core.pc
        assert "mul" in member.expr

    def test_no_cores_without_a_collector(self):
        from repro.concolic import ConcolicEngine
        from repro.tools.profiles import TRITONX

        image = compile_bc(self.SOURCE)
        report = ConcolicEngine(TRITONX).run(image, [b"1"], argv0=b"x")
        assert not report.solved


class TestPolicyFingerprint:
    def test_provenance_flag_is_non_semantic(self):
        import dataclasses

        from repro.tools.profiles import TRITONX

        flipped = dataclasses.replace(TRITONX, provenance=True)
        assert flipped.fingerprint() == TRITONX.fingerprint()

    def test_semantic_fields_still_move_the_fingerprint(self):
        import dataclasses

        from repro.tools.profiles import TRITONX

        changed = dataclasses.replace(TRITONX, div_guard=not TRITONX.div_guard)
        assert changed.fingerprint() != TRITONX.fingerprint()
