"""Shared test helpers: assembly/compile-and-run shortcuts and a
reference AES implementation independent of the guest runtime."""

from __future__ import annotations

from repro.asm import assemble
from repro.binfmt import Image, link
from repro.lang import compile_single, compile_sources
from repro.vm import Environment, Machine, RunResult


def run_asm(source: str, argv: list[bytes] | None = None,
            env: Environment | None = None, max_steps: int = 1_000_000) -> RunResult:
    """Assemble, link and run a raw-assembly program (entry ``_start``)."""
    image = link([assemble(source, "test.s")])
    return Machine(image, argv or [b"test"], env).run(max_steps)


def run_bc(source: str, argv: list[bytes] | None = None,
           env: Environment | None = None, max_steps: int = 5_000_000) -> RunResult:
    """Compile a BombC program (with runtime) and run it."""
    image = compile_single(source)
    return Machine(image, argv or [b"test"], env).run(max_steps)


def compile_bc(source: str) -> Image:
    return compile_single(source)


# -- reference AES-128 (for validating the guest implementation) ---------------

def _aes_sbox() -> list[int]:
    sbox = [0] * 256
    p = q = 1
    while True:
        p = (p ^ ((p << 1) & 0xFF) ^ ((p >> 7) * 0x1B)) & 0xFF
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        q ^= (q >> 7) * 0x09
        q &= 0xFF
        rot = lambda x, n: ((x << n) | (x >> (8 - n))) & 0xFF
        sbox[p] = q ^ rot(q, 1) ^ rot(q, 2) ^ rot(q, 3) ^ rot(q, 4) ^ 0x63
        if p == 1:
            break
    sbox[0] = 0x63
    return sbox


_SBOX = _aes_sbox()


def _xtime(x: int) -> int:
    x <<= 1
    if x & 0x100:
        x ^= 0x11B
    return x & 0xFF


def _expand(key: bytes) -> list[int]:
    rk = list(key)
    rcon = [0, 1, 2, 4, 8, 16, 32, 64, 128, 27, 54]
    i = 16
    while i < 176:
        t = rk[i - 4 : i]
        if i % 16 == 0:
            t = [_SBOX[t[1]] ^ rcon[i // 16], _SBOX[t[2]], _SBOX[t[3]], _SBOX[t[0]]]
        for j in range(4):
            rk.append(rk[i - 16 + j] ^ t[j])
        i += 4
    return rk


def aes128_encrypt_ref(key: bytes, pt: bytes) -> bytes:
    """Reference AES-128 single-block encryption (column-major state)."""
    rk = _expand(key)
    st = [a ^ b for a, b in zip(pt, rk[:16])]

    def shift_rows(s):
        out = s[:]
        out[1], out[5], out[9], out[13] = s[5], s[9], s[13], s[1]
        out[2], out[6], out[10], out[14] = s[10], s[14], s[2], s[6]
        out[3], out[7], out[11], out[15] = s[15], s[3], s[7], s[11]
        return out

    for rnd in range(1, 10):
        st = [_SBOX[b] for b in st]
        st = shift_rows(st)
        ns = st[:]
        for c in range(4):
            a = st[4 * c : 4 * c + 4]
            ns[4 * c + 0] = _xtime(a[0]) ^ (_xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3]
            ns[4 * c + 1] = a[0] ^ _xtime(a[1]) ^ (_xtime(a[2]) ^ a[2]) ^ a[3]
            ns[4 * c + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ (_xtime(a[3]) ^ a[3])
            ns[4 * c + 3] = (_xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ _xtime(a[3])
        st = [x & 0xFF for x in ns]
        st = [a ^ b for a, b in zip(st, rk[16 * rnd : 16 * rnd + 16])]
    st = [_SBOX[b] for b in st]
    st = shift_rows(st)
    return bytes(a ^ b for a, b in zip(st, rk[160:176]))
