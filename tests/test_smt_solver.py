"""Tests for the solver facade, interval presolve and FP search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.smt import (
    Solver,
    eval_expr,
    mk_binop,
    mk_bool_not,
    mk_bool_or,
    mk_cmp,
    mk_const,
    mk_eq,
    mk_fp,
    mk_var,
    mk_zext,
    search_fp_model,
    solve,
)
from repro.smt.intervals import presolve_unsat


class TestSolverFacade:
    def test_empty_is_sat(self):
        assert Solver().check().sat

    def test_const_false_short_circuit(self):
        solver = Solver()
        solver.add(mk_const(0, 1))
        result = solver.check()
        assert not result.sat
        # No SAT machinery should have been needed for this.

    def test_check_with_cache_skips_solving(self):
        x = mk_var("sf_x", 8)
        solver = Solver()
        solver.add(mk_cmp("ult", x, mk_const(100, 8)))
        cached = {"sf_x": 5}
        result = solver.check_with_cache([mk_cmp("ult", x, mk_const(50, 8))], cached)
        assert result.sat and result.model == cached

    def test_check_with_cache_falls_back(self):
        x = mk_var("sf_y", 8)
        solver = Solver()
        result = solver.check_with_cache([mk_eq(x, mk_const(9, 8))], {"sf_y": 5})
        assert result.sat and result.model["sf_y"] == 9

    def test_node_budget(self):
        x = mk_var("sf_n", 64)
        node = x
        for i in range(200):
            node = mk_binop("mul", node, mk_var(f"sf_n{i}", 64))
        solver = Solver(max_nodes=50)
        solver.add(mk_eq(node, mk_const(1, 64)))
        with pytest.raises(SolverError, match="too large"):
            solver.check()

    def test_clone_is_independent(self):
        solver = Solver()
        solver.add(mk_eq(mk_var("sf_c", 8), mk_const(1, 8)))
        other = solver.clone()
        other.add(mk_const(0, 1))
        assert solver.check().sat
        assert not other.check().sat

    def test_conjunction(self):
        x = mk_var("sf_j", 8)
        solver = Solver()
        solver.add(mk_cmp("ult", x, mk_const(5, 8)))
        node = solver.conjunction([mk_cmp("ult", mk_const(1, 8), x)])
        assert eval_expr(node, {"sf_j": 3}) == 1
        assert eval_expr(node, {"sf_j": 7}) == 0


class TestIntervalPresolve:
    def test_digit_bounds_unsat(self):
        b = mk_var("ip_b", 8)
        constraints = [
            mk_cmp("ule", mk_const(48, 8), b),
            mk_cmp("ule", b, mk_const(57, 8)),
            mk_cmp("ult", b, mk_const(40, 8)),
        ]
        assert presolve_unsat(constraints)
        assert not solve(constraints).sat

    def test_negated_range_unsat(self):
        v = mk_var("ip_v", 8)
        x = mk_binop("sub", mk_const(0, 64),
                     mk_binop("mul", mk_zext(v, 64), mk_const(3, 64)))
        constraints = [
            mk_cmp("slt", mk_const(9, 64), x),  # 9 < -(3v): needs v "negative"
            mk_cmp("ule", mk_const(1, 8), v),
        ]
        assert presolve_unsat(constraints)

    def test_sat_sets_never_reported_unsat(self):
        v = mk_var("ip_s", 8)
        constraints = [
            mk_cmp("ule", mk_const(48, 8), v),
            mk_cmp("ule", v, mk_const(57, 8)),
            mk_eq(mk_zext(v, 64), mk_const(50, 64)),
        ]
        assert not presolve_unsat(constraints)
        assert solve(constraints).sat

    @given(c1=st.integers(0, 255), c2=st.integers(0, 255),
           pick=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_soundness_vs_sat(self, c1, c2, pick):
        v = mk_var("ip_f", 8)
        constraints = [
            mk_cmp("ule", mk_const(min(c1, c2), 8), v),
            mk_cmp("ule", v, mk_const(max(c1, c2), 8)),
            mk_eq(v, mk_const(pick, 8)),
        ]
        if presolve_unsat(constraints):
            assert not solve(constraints).sat

    def test_wrapping_interval_widens_to_top(self):
        # v * big could wrap; the analysis must not conclude anything.
        v = mk_var("ip_w", 64)
        node = mk_binop("mul", v, mk_const(2**60, 64))
        constraints = [mk_cmp("slt", mk_const(0, 64), node)]
        assert not presolve_unsat(constraints)

    def test_or_tri_state(self):
        v = mk_var("ip_o", 8)
        lhs = mk_cmp("ult", v, mk_const(0, 8))       # definitely false
        rhs = mk_cmp("ule", mk_const(0, 8), v)       # definitely true
        assert not presolve_unsat([mk_bool_or(lhs, rhs)])
        assert presolve_unsat([lhs])


class TestFpSearch:
    def test_finds_the_papers_float_edge(self):
        x = mk_var("fs_x", 32)
        base = mk_const(0x44800000, 32)  # 1024.0f
        constraints = [
            mk_fp("feq32", mk_fp("fadd32", base, x), base),
            mk_fp("flt32", mk_const(0, 32), x),
        ]
        model = search_fp_model(constraints, {"fs_x": 32})
        assert model is not None
        assert all(eval_expr(c, model) for c in constraints)

    def test_unsat_returns_none_within_budget(self):
        x = mk_var("fs_u", 32)
        constraints = [
            mk_fp("flt32", x, mk_const(0, 32)),              # x < 0
            mk_fp("flt32", mk_const(0, 32), x),              # x > 0
        ]
        assert search_fp_model(constraints, {"fs_u": 32}, budget=300) is None

    def test_candidates_tried_first(self):
        x = mk_var("fs_c", 64)
        constraints = [mk_eq(x, mk_const(123456789, 64))]
        model = search_fp_model(constraints, {"fs_c": 64},
                                candidates=[{"fs_c": 123456789}], budget=10)
        assert model == {"fs_c": 123456789}

    def test_deterministic(self):
        x = mk_var("fs_d", 32)
        constraints = [mk_fp("flt32", mk_const(0, 32), x)]
        a = search_fp_model(constraints, {"fs_d": 32})
        b = search_fp_model(constraints, {"fs_d": 32})
        assert a == b
