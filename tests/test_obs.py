"""Tests for the observability layer (spans, counters, sinks, wiring).

Spans are timed with injectable clocks, so every timing assertion here
is exact — no sleeps, no tolerances.  The wiring tests drive real
engine runs through the recorder and check that the metric stream
reports the same numbers the engines' own result objects carry.
"""

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    JsonlSink,
    MemorySink,
    Recorder,
    aggregate_events,
    read_events,
    render_stats,
)


class FakeClock:
    """Manually advanced clock for deterministic span timing."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_recorder(sinks=()):
    wall, cpu = FakeClock(), FakeClock()
    rec = Recorder(sinks=sinks, wall_clock=wall, cpu_clock=cpu)
    return rec, wall, cpu


class TestSpans:
    def test_span_timing_is_exact_with_fake_clock(self):
        rec, wall, cpu = make_recorder()
        with rec.span("outer"):
            wall.advance(2.0)
            cpu.advance(0.5)
        stat = rec.span_stats["outer"]
        assert stat == {"count": 1, "wall_s": 2.0, "cpu_s": 0.5, "self_s": 2.0}

    def test_nesting_paths_and_stage_totals(self):
        sink = MemorySink()
        rec, wall, _ = make_recorder([sink])
        with rec.span("cell") as cell:
            with rec.span("trace"):
                wall.advance(1.0)
            with rec.span("solve"):
                wall.advance(0.25)
                with rec.span("solve"):
                    wall.advance(0.25)
        # Children before parents in the event stream.
        names = [e["name"] for e in sink.events if e["t"] == "span"]
        assert names == ["trace", "solve", "solve", "cell"]
        paths = [e["path"] for e in sink.events if e["t"] == "span"]
        assert paths == ["cell/trace", "cell/solve/solve", "cell/solve", "cell"]
        # The enclosing span sees a flat per-stage timeline.  The nested
        # solve contributes to both its parent solve and the cell, so
        # the cell's solve total counts the inner 0.25 s twice.
        assert cell.stage_totals["trace"] == 1.0
        assert cell.stage_totals["solve"] == 0.75
        assert cell.wall_s == 1.5
        # Exclusive self-time strips nested children: the outer solve's
        # 0.5 s inclusive wall minus the inner solve's 0.25 s, and the
        # cell itself did no work of its own.
        assert cell.stage_self_totals["trace"] == 1.0
        assert cell.stage_self_totals["solve"] == 0.5
        assert cell.self_s == 0.0

    def test_span_records_counter_deltas(self):
        sink = MemorySink()
        rec, _, _ = make_recorder([sink])
        rec.count("x", 10)
        with rec.span("work"):
            rec.count("x", 5)
            rec.count("y")
        event = next(e for e in sink.events if e["t"] == "span")
        assert event["counters"] == {"x": 5, "y": 1}

    def test_span_marks_exceptions(self):
        sink = MemorySink()
        rec, _, _ = make_recorder([sink])
        with pytest.raises(ValueError):
            with rec.span("broken"):
                raise ValueError("boom")
        event = next(e for e in sink.events if e["t"] == "span")
        assert event["attrs"]["error"] == "ValueError"
        assert not rec._stack  # the stack unwound


class TestCountersAndHists:
    def test_counters_aggregate(self):
        rec, _, _ = make_recorder()
        rec.count("a")
        rec.count("a", 4)
        rec.count("b", 2)
        assert rec.snapshot()["counters"] == {"a": 5, "b": 2}

    def test_histogram_summary(self):
        rec, _, _ = make_recorder()
        for v in [1.0, 2.0, 3.0, 4.0]:
            rec.observe("h", v)
        summary = rec.snapshot()["histograms"]["h"]
        assert summary["count"] == 4
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 3.0  # nearest-rank on the sorted list


class TestJsonlRoundTrip:
    def test_stream_reaggregates_to_the_snapshot(self, tmp_path):
        path = tmp_path / "m.jsonl"
        rec, wall, _ = make_recorder([JsonlSink(path)])
        with rec.span("stage"):
            wall.advance(1.5)
            rec.count("widgets", 7)
        rec.observe("latency", 0.25)
        rec.close()

        events = read_events(path)
        assert all(isinstance(e, dict) for e in events)
        agg = aggregate_events(events)
        assert agg.counters["widgets"] == 7
        assert agg.spans["stage"]["wall_s"] == pytest.approx(1.5)
        assert agg.hists["latency"]["count"] == 1
        text = render_stats(agg)
        assert "stage" in text and "widgets" in text and "latency" in text

    def test_concatenated_streams_merge(self, tmp_path):
        path = tmp_path / "m.jsonl"
        for _ in range(2):
            sink = MemorySink()
            rec, _, _ = make_recorder([sink])
            rec.count("runs")
            rec.close()
            with path.open("a") as fp:
                for event in sink.events:
                    fp.write(json.dumps(event) + "\n")
        agg = aggregate_events(read_events(path))
        assert agg.counters["runs"] == 2


class TestJsonlConcurrentWriters:
    """Forked processes sharing one JsonlSink must interleave whole
    lines, never fragments — the fleet's workers inherit the parent's
    descriptor and the kernel-shared offset is the only coordination."""

    N_CHILDREN = 4
    N_EVENTS = 200

    def test_forked_writers_produce_only_whole_lines(self, tmp_path):
        import os

        path = tmp_path / "fork.jsonl"
        sink = JsonlSink(path)
        pids = []
        for child in range(self.N_CHILDREN):
            pid = os.fork()
            if pid == 0:
                try:
                    # Distinct payload sizes per child so torn lines
                    # could not accidentally reassemble into valid JSON.
                    pad = "x" * (20 + 7 * child)
                    for i in range(self.N_EVENTS):
                        sink.emit({"t": "count", "name": f"c{child}",
                                   "n": 1, "i": i, "pad": pad})
                    os._exit(0)
                except BaseException:
                    os._exit(1)
            pids.append(pid)
        for pid in pids:
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
        sink.close()

        events = read_events(path)  # strict: ANY torn line raises
        assert len(events) == self.N_CHILDREN * self.N_EVENTS
        for child in range(self.N_CHILDREN):
            seen = [e["i"] for e in events if e["name"] == f"c{child}"]
            # Each child's own lines land in order and none are lost.
            assert seen == list(range(self.N_EVENTS))

    def test_torn_final_line_is_absorbed_non_strict(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        sink = JsonlSink(path)
        sink.emit({"t": "count", "name": "ok", "n": 1})
        sink.close()
        # Simulate a writer killed mid-flush: append half a line.
        with path.open("a", encoding="utf-8") as fp:
            fp.write('{"t":"count","name":"torn","n')
        with pytest.raises(json.JSONDecodeError):
            read_events(path)
        events = read_events(path, strict=False)
        assert [e["name"] for e in events] == ["ok"]


class TestOffMode:
    def test_hooks_are_noops_without_a_recorder(self):
        assert obs.active() is None
        obs.count("nothing")
        obs.observe("nothing", 1.0)
        assert obs.span("nothing") is NULL_SPAN
        with obs.span("nothing") as sp:
            sp.set("k", "v")
            assert sp.stage_totals == {}

    def test_off_mode_overhead_is_tiny(self):
        # 200k disabled count() calls must stay well under a second:
        # the off path is one global load and a None check.  A generous
        # absolute bound keeps this robust on slow CI machines while
        # still catching an accidentally-heavy off path.
        import time

        assert obs.active() is None
        t0 = time.perf_counter()
        for _ in range(200_000):
            obs.count("x")
        assert time.perf_counter() - t0 < 1.0

    def test_recording_scopes_and_restores(self):
        outer = Recorder()
        with obs.recording(outer, close=False):
            assert obs.active() is outer
            inner = Recorder()
            with obs.recording(inner, close=False):
                assert obs.active() is inner
                obs.count("scoped")
            assert obs.active() is outer
        assert obs.active() is None
        assert inner.counters == {"scoped": 1}
        assert outer.counters == {}

    def test_recording_restores_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with obs.recording(rec):
                raise RuntimeError
        assert obs.active() is None


class TestEngineWiring:
    def test_figure3_counts_flow_through_the_metrics_path(self):
        # The paper's Figure 3 reports 5 tainted instructions without the
        # printf and 66 with it (+61).  This reproduction measures its own
        # pair of counts; the regression being pinned here is that the
        # metrics path reports *exactly* the numbers the TaintSummary
        # carries, and that the blow-up shape (printing multiplies the
        # tainted count) is visible from the metric stream alone.
        from repro.eval import run_figure3

        sink = MemorySink()
        with obs.recording(Recorder(sinks=[sink])):
            result = run_figure3()
        deltas = {
            e["attrs"]["variant"]: e["counters"]
            for e in sink.events
            if e["t"] == "span" and e["name"] == "figure3"
        }
        off = deltas["fig3_printf_off"]
        on = deltas["fig3_printf_on"]
        assert off["taint.instructions_tainted"] == \
            result.off.tainted_instructions
        assert on["taint.instructions_tainted"] == \
            result.on.tainted_instructions
        assert on["taint.instructions_tainted"] > \
            2 * off["taint.instructions_tainted"]
        assert on["taint.model_nodes"] == result.on.model_nodes

    def test_vm_counters(self):
        from repro.bombs.suite import get_bomb
        from repro.vm import Machine

        bomb = get_bomb("cp_stack")
        rec = Recorder()
        with obs.recording(rec, close=False):
            result = Machine(
                bomb.image, [b"prog"] + bomb.seed_argv, bomb.base_env()
            ).run()
        counters = rec.snapshot()["counters"]
        assert counters["vm.instructions"] == result.steps
        assert counters["vm.syscalls"] >= 1
        # Per-opcode histogram totals match the retirement count.
        op_total = sum(v for k, v in counters.items() if k.startswith("vm.op."))
        assert op_total == result.steps

    def test_cell_records_stage_timings_and_replay(self):
        from repro.bombs.suite import get_bomb
        from repro.eval import run_cell

        rec = Recorder()
        with obs.recording(rec, close=False):
            cell = run_cell(get_bomb("cp_stack"), "tritonx")
        assert cell.outcome.solved
        for stage in ("trace", "lift", "extract", "solve", "replay"):
            assert stage in cell.timings, cell.timings
            assert cell.timings[stage] >= 0.0
        counters = rec.snapshot()["counters"]
        assert counters["taint.instructions_tainted"] > 0
        assert counters["smt.queries"] > 0
        assert "smt.conflicts" in counters

    def test_cell_diagnostic_names_the_root_cause(self):
        from repro.bombs.suite import get_bomb
        from repro.eval import run_cell

        cell = run_cell(get_bomb("sv_time"), "bapx")
        assert not cell.outcome.solved
        assert cell.diagnostic is not None
        # With no recorder installed there is no stage timeline.
        assert cell.timings == {}

    def test_solved_counts_includes_all_tools(self):
        from repro.bombs import TOOL_COLUMNS
        from repro.errors import ErrorStage
        from repro.eval.harness import CellResult, Table2Result
        from repro.tools.api import ToolReport

        result = Table2Result()
        # An unsolved cell for a tool outside TOOL_COLUMNS must still
        # appear in the counts (previously it was silently dropped).
        result.add(CellResult(
            bomb_id="sv_time", tool="rexx", outcome=ErrorStage.ES0,
            expected=None, report=ToolReport(tool="rexx", bomb_id="sv_time"),
        ))
        counts = result.solved_counts()
        assert counts["rexx"] == 0
        for tool in TOOL_COLUMNS:
            assert counts[tool] == 0
