"""Parallel Table II harness: process fan-out must not change results.

Cells are independent (bomb, tool) pairs; ``run_table2(jobs=N)`` fans
them over a process pool with each worker recording to a private JSONL
stream the parent absorbs.  These tests pin the two contracts: the
outcome matrix is byte-identical to a serial run, and the merged
metrics carry the same counters/stage spans a serial recorder would.
"""

import json

from repro import obs
from repro.eval import render_table2, run_table2

BOMBS = ("cp_stack", "sv_time")
TOOLS = ("tritonx", "bapx")


def _outcome_view(result):
    """The outcome-relevant projection (timings legitimately differ)."""
    data = result.to_json()
    return {
        "cells": [
            {k: c[k] for k in ("bomb", "tool", "outcome", "expected",
                               "matches_paper", "diagnostic")}
            for c in data["cells"]
        ],
        "solved_counts": data["solved_counts"],
        "agreement": data["agreement"],
    }


class TestParallelMatchesSerial:
    def test_outcome_matrix_is_identical(self):
        serial = run_table2(bomb_ids=BOMBS, tools=TOOLS)
        parallel = run_table2(bomb_ids=BOMBS, tools=TOOLS, jobs=2)
        assert _outcome_view(serial) == _outcome_view(parallel)
        assert render_table2(serial) == render_table2(parallel)

    def test_cell_results_pickle_cleanly(self):
        import pickle

        parallel = run_table2(bomb_ids=("cp_stack",), tools=("tritonx",),
                              jobs=2)
        cell = parallel.cells[("cp_stack", "tritonx")]
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.outcome is cell.outcome
        assert clone.report.solved == cell.report.solved

    def test_metrics_merge_is_exact(self, tmp_path):
        sink_path = tmp_path / "par.jsonl"
        rec = obs.Recorder(sinks=[obs.JsonlSink(sink_path)])
        with obs.recording(rec, close=False):
            result = run_table2(bomb_ids=BOMBS, tools=TOOLS, jobs=2)
        snap = rec.snapshot()
        counters = snap["counters"]

        # Work counters from inside the workers made it back.
        assert counters["smt.queries"] > 0
        assert counters["eval.cells_merged"] == len(BOMBS) * len(TOOLS)
        assert counters["vm.instructions"] > 0
        # One "cell" span per cell, with the per-stage spans below it.
        assert snap["spans"]["cell"]["count"] == len(BOMBS) * len(TOOLS)
        for stage in ("trace", "solve"):
            assert stage in snap["spans"], snap["spans"].keys()
        # Histograms merged from raw worker values, not summaries.
        assert snap["histograms"]["smt.solve_s"]["count"] == \
            counters["smt.queries"]
        # Per-cell stage timings were measured in the worker itself.
        cell = result.cells[(BOMBS[0], TOOLS[0])]
        assert cell.timings and all(v >= 0.0 for v in cell.timings.values())

        # The parent JSONL stream carries the workers' span events.
        rec.close()
        events = [json.loads(line) for line in
                  sink_path.read_text().splitlines()]
        names = {e["name"] for e in events if e["t"] == "span"}
        assert {"cell", "trace", "solve", "table2"} <= names

    def test_serial_recorder_sees_equivalent_counters(self):
        rec_serial = obs.Recorder()
        with obs.recording(rec_serial, close=False):
            run_table2(bomb_ids=BOMBS, tools=TOOLS)
        rec_par = obs.Recorder()
        with obs.recording(rec_par, close=False):
            run_table2(bomb_ids=BOMBS, tools=TOOLS, jobs=3)
        serial = rec_serial.snapshot()["counters"]
        parallel = rec_par.snapshot()["counters"]
        # The parallel run adds only its own merge bookkeeping.
        parallel.pop("eval.cells_merged")
        assert serial == parallel


class TestAbsorb:
    def test_absorb_merges_spans_counters_hists(self):
        child = obs.Recorder(sinks=[obs.MemorySink()], hist_values=True)
        child_sink = child.sinks[0]
        with obs.recording(child):
            with obs.span("stage"):
                obs.count("widgets", 3)
            obs.observe("latency", 0.5)
            obs.observe("latency", 1.5)
        # recording() closed the child, flushing summaries.
        parent_sink = obs.MemorySink()
        parent = obs.Recorder(sinks=[parent_sink])
        parent.count("widgets", 1)
        parent.absorb(child_sink.events)
        assert parent.counters["widgets"] == 4
        assert parent.hists["latency"] == [0.5, 1.5]
        assert parent.span_stats["stage"]["count"] == 1
        # Span events were re-emitted; summaries were not duplicated.
        kinds = [e["t"] for e in parent_sink.events]
        assert kinds.count("span") == 1
        assert kinds.count("hist") == 0

    def test_absorb_without_values_still_merges_counters(self):
        child = obs.Recorder(sinks=[obs.MemorySink()])  # no hist_values
        child_sink = child.sinks[0]
        with obs.recording(child):
            obs.count("n", 2)
            obs.observe("h", 1.0)
        parent = obs.Recorder()
        parent.absorb(child_sink.events)
        assert parent.counters == {"n": 2}
        assert parent.hists == {}
