"""Tests for the linker and the REXF image format."""

import pytest

from repro.asm import assemble
from repro.binfmt import FLAG_L, FLAG_W, FLAG_X, Image, link
from repro.errors import LinkError
from repro.vm import Machine


def _simple_module(name="m", entry_label="_start"):
    return assemble(f"""
    .text
    .global {entry_label}
    {entry_label}:
        movi r1, 7
        movi r0, 0
        syscall
        hlt
    .data
    value: .quad 99
    """, name)


class TestLayout:
    def test_sections_page_aligned_and_ordered(self):
        image = link([_simple_module()])
        addrs = [sec.vaddr for sec in image.sections]
        assert addrs == sorted(addrs)
        assert all(addr % 0x1000 == 0 for addr in addrs)
        assert image.section(".text").vaddr == 0x1000

    def test_flags(self):
        src = ".text\nf: ret\n.lib\ng: ret\n.data\nd: .quad 1\n.bss\nb: .space 8\n"
        module = assemble(src)
        module.symbols["_start"] = (".text", 0)
        image = link([module])
        assert image.section(".text").flags == FLAG_X
        assert image.section(".lib").flags == FLAG_X | FLAG_L
        assert image.section(".data").flags == FLAG_W

    def test_bss_has_mem_size_but_no_data(self):
        module = assemble(".text\n_start: ret\n.bss\nbuf: .space 128\n")
        image = link([module])
        bss = image.section(".bss")
        assert bss.mem_size >= 128 and len(bss.data) == 0


class TestSymbols:
    def test_cross_module_call(self):
        a = assemble("""
        .text
        .global _start
        _start:
            call helper
            mov r1, r0
            movi r0, 0
            syscall
            hlt
        """, "a")
        b = assemble(".text\n.global helper\nhelper:\n    movi r0, 33\n    ret\n", "b")
        image = link([a, b])
        assert Machine(image, [b"t"]).run().exit_code == 33

    def test_local_labels_are_module_scoped(self):
        a = assemble(".text\n_start:\n.Lx: jmp .Lx\n", "a")
        b = assemble(".text\nother:\n.Lx: jmp .Lx\n", "b")
        image = link([a, b])  # no duplicate-symbol error
        assert ".Lx" not in image.symbols

    def test_duplicate_symbol_rejected(self):
        a = assemble(".text\nfoo: ret\n_start: ret\n", "a")
        b = assemble(".text\nfoo: ret\n", "b")
        with pytest.raises(LinkError, match="duplicate symbol"):
            link([a, b])

    def test_undefined_symbol_rejected(self):
        module = assemble(".text\n_start: call missing\n")
        with pytest.raises(LinkError, match="undefined symbol"):
            link([module])

    def test_missing_entry_rejected(self):
        module = assemble(".text\nfoo: ret\n")
        with pytest.raises(LinkError, match="entry symbol"):
            link([module])

    def test_symbol_kinds(self):
        prog = assemble(".text\n_start: ret\n.data\ng: .quad 1\n", "prog")
        lib = assemble(".lib\nhelper: ret\n.data\nlibstate: .quad 0\n", "lib")
        image = link([prog, lib])
        assert image.symbols["_start"].kind == "func"
        assert image.symbols["g"].kind == "object"
        assert image.symbols["helper"].kind == "lib"
        assert image.symbols["libstate"].kind == "lib_object"

    def test_lib_object_ranges_cover_lib_state(self):
        prog = assemble(".text\n_start: ret\n.data\ng: .quad 1\n", "prog")
        lib = assemble(".lib\nhelper: ret\n.data\nlibstate: .quad 0\n", "lib")
        image = link([prog, lib])
        ranges = image.lib_object_ranges()
        addr = image.symbols["libstate"].addr
        assert any(lo <= addr < hi for lo, hi in ranges)
        g_addr = image.symbols["g"].addr
        assert not any(lo <= g_addr < hi for lo, hi in ranges)


class TestRelocations:
    def test_abs64_in_data(self):
        module = assemble("""
        .text
        .global _start
        _start:
            movi r2, ptr
            ld r3, [r2]     ; r3 = &target
            callr r3
            mov r1, r0
            movi r0, 0
            syscall
            hlt
        target:
            movi r0, 88
            ret
        .data
        ptr: .quad target
        """)
        image = link([module])
        assert Machine(image, [b"t"]).run().exit_code == 88

    def test_movi_symbol_addend(self):
        module = assemble("""
        .text
        .global _start
        _start:
            movi r2, tab+8
            ld r1, [r2]
            movi r0, 0
            syscall
            hlt
        .data
        tab: .quad 11, 22
        """)
        image = link([module])
        assert Machine(image, [b"t"]).run().exit_code == 22


class TestImageFormat:
    def test_serialization_roundtrip(self):
        image = link([_simple_module()])
        blob = image.to_bytes()
        back = Image.from_bytes(blob)
        assert back.entry == image.entry
        assert {s.name for s in back.sections} == {s.name for s in image.sections}
        assert back.symbols.keys() == image.symbols.keys()
        for name, sym in image.symbols.items():
            assert back.symbols[name].addr == sym.addr
            assert back.symbols[name].kind == sym.kind
        # Running the deserialized image behaves identically.
        assert Machine(back, [b"t"]).run().exit_code == \
            Machine(image, [b"t"]).run().exit_code

    def test_bad_magic_rejected(self):
        with pytest.raises(LinkError, match="not a REXF"):
            Image.from_bytes(b"ELF\x7f" + b"\0" * 64)

    def test_file_size_nonzero(self):
        image = link([_simple_module()])
        assert image.file_size == len(image.to_bytes()) > 50

    def test_code_queries(self):
        image = link([_simple_module()])
        text = image.section(".text")
        assert image.is_code_addr(text.vaddr)
        assert not image.is_code_addr(image.section(".data").vaddr)
        assert not image.is_lib_addr(text.vaddr)
