"""Tests for telemetry exporters (Prometheus text, self-time profile)
and the campaign status watcher.

Exporters are pure functions over event streams / aggregates, so every
assertion here is exact: synthetic events in, known text out.
"""

import io
import json

import pytest

from repro.cli import main
from repro.obs import (
    aggregate_events,
    prometheus_text,
    render_profile,
    self_time_profile,
)
from repro.obs.export import ProfileRow
from repro.service import CampaignService, CampaignSpec, watch_status


class TestPrometheusText:
    def test_counters_become_prefixed_counters(self):
        text = prometheus_text({"counters": {"smt.queries": 7}})
        assert text == ("# TYPE repro_smt_queries counter\n"
                        "repro_smt_queries 7\n")

    def test_name_sanitization(self):
        text = prometheus_text({"counters": {"vm.steps-total": 1}})
        assert "repro_vm_steps_total 1" in text

    def test_span_families_are_labelled(self):
        text = prometheus_text({"spans": {
            "solve": {"count": 3, "wall_s": 1.5, "cpu_s": 0.5}}})
        assert '# TYPE repro_span_count counter' in text
        assert 'repro_span_count{span="solve"} 3' in text
        assert 'repro_span_wall_seconds_total{span="solve"} 1.5' in text
        assert 'repro_span_cpu_seconds_total{span="solve"} 0.5' in text

    def test_histograms_become_summaries(self):
        text = prometheus_text({"histograms": {
            "smt.gates": {"p50": 4.0, "p95": 9.0, "total": 20.0, "count": 5}}})
        assert '# TYPE repro_smt_gates summary' in text
        assert 'repro_smt_gates{quantile="0.5"} 4.0' in text
        assert 'repro_smt_gates{quantile="0.95"} 9.0' in text
        assert 'repro_smt_gates_sum 20.0' in text
        assert 'repro_smt_gates_count 5' in text

    def test_accepts_an_aggregate(self):
        agg = aggregate_events([
            {"t": "counter", "name": "prov.drops", "value": 2},
        ])
        assert "repro_prov_drops 2" in prometheus_text(agg)

    def test_empty_input(self):
        assert prometheus_text({}) == ""


def span(path, wall, cpu=0.0):
    name = path.rsplit("/", 1)[-1]
    return {"t": "span", "name": name, "path": path,
            "wall_s": wall, "cpu_s": cpu}


class TestSelfTimeProfile:
    def test_child_wall_subtracts_from_parent(self):
        # Emission order is children-before-parents, as the recorder
        # guarantees: a span's event fires when it closes.
        rows = self_time_profile([
            span("cell/trace", 2.0),
            span("cell/solve", 1.0),
            span("cell", 5.0),
        ])
        by_path = {r.path: r for r in rows}
        assert by_path["cell"].self_s == pytest.approx(2.0)
        assert by_path["cell"].wall_s == pytest.approx(5.0)
        assert by_path["cell/trace"].self_s == pytest.approx(2.0)
        assert rows[0].path in ("cell", "cell/trace")  # sorted by self

    def test_multi_level_hierarchy(self):
        rows = self_time_profile([
            span("a/b/c", 1.0),
            span("a/b", 3.0),
            span("a", 10.0),
        ])
        by_path = {r.path: r for r in rows}
        assert by_path["a"].self_s == pytest.approx(7.0)
        assert by_path["a/b"].self_s == pytest.approx(2.0)
        assert by_path["a/b/c"].self_s == pytest.approx(1.0)

    def test_repeated_paths_aggregate(self):
        rows = self_time_profile([
            span("cell/solve", 1.0), span("cell", 2.0),
            span("cell/solve", 3.0), span("cell", 4.0),
        ])
        by_path = {r.path: r for r in rows}
        assert by_path["cell/solve"].count == 2
        assert by_path["cell/solve"].wall_s == pytest.approx(4.0)
        assert by_path["cell"].self_s == pytest.approx(2.0)

    def test_non_span_events_ignored(self):
        assert self_time_profile([{"t": "counter", "name": "x", "value": 1}]) == []

    def test_render(self):
        text = render_profile([ProfileRow("cell", 1, 5.0, 3.0, 0.1),
                               ProfileRow("cell/trace", 1, 2.0, 2.0, 0.0)])
        assert "cell/trace" in text and "60.0%" in text
        assert render_profile([]) == "no span events"


class TestStatsCli:
    @pytest.fixture
    def metrics_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        events = [
            {"t": "counter", "name": "smt.queries", "value": 4},
            span("cell/solve", 1.0),
            span("cell", 3.0),
        ]
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        return str(path)

    def test_stats_prom(self, metrics_file, capsys):
        assert main(["stats", metrics_file, "--prom"]) == 0
        out = capsys.readouterr().out
        assert "repro_smt_queries 4" in out
        assert 'repro_span_wall_seconds_total{span="cell"} 3.0' in out

    def test_stats_profile(self, metrics_file, capsys):
        assert main(["stats", metrics_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cell/solve" in out and "self s" in out


class TestWatchStatus:
    def _service(self, tmp_path):
        service = CampaignService(tmp_path / "svc")
        cid = service.submit(CampaignSpec(bombs=("cp_stack",),
                                          tools=("tritonx",)))
        return service, cid

    def test_exits_when_no_work_remains(self, tmp_path):
        service, cid = self._service(tmp_path)
        service.run(cid)
        out = io.StringIO()
        naps = []
        status = watch_status(service, cid, interval=0.5, stream=out,
                              sleep=naps.append)
        assert naps == []  # already done: one poll, no sleeping
        assert status["states"]["done"] == 1
        line = out.getvalue().strip()
        assert line.startswith(f"{cid}: pending=0 claimed=0 done=1")
        assert "[computed=1]" in line

    def test_polls_until_bounded(self, tmp_path):
        service, cid = self._service(tmp_path)  # never run: stays pending
        out = io.StringIO()
        naps = []
        status = watch_status(service, cid, interval=0.25, stream=out,
                              sleep=naps.append, max_polls=3)
        assert naps == [0.25, 0.25]
        assert status["states"]["pending"] == 1
        assert len(out.getvalue().splitlines()) == 3

    def test_cli_watch_requires_a_campaign(self, tmp_path):
        with pytest.raises(SystemExit, match="needs a campaign"):
            main(["campaign", "status", "--root", str(tmp_path), "--watch"])

    def test_cli_watch_done_campaign(self, tmp_path, capsys):
        service, cid = self._service(tmp_path)
        service.run(cid)
        assert main(["campaign", "status", "--root", str(tmp_path / "svc"),
                     cid, "--watch", "--interval", "0.1"]) == 0
        assert "done=1" in capsys.readouterr().out
