"""Differential tests of the FP instruction set against IEEE semantics."""

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from .helpers import run_asm

f32s = st.floats(allow_nan=False, allow_infinity=False, width=32)
f64s = st.floats(allow_nan=False, allow_infinity=False,
                 min_value=-1e300, max_value=1e300)


def _f64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _f32_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _run_fp_binop(op: str, a_bits: int, b_bits: int) -> int:
    """Execute one FP instruction and return the result register bits
    (low 32 reported via two exits for 64-bit results)."""
    result = run_asm(f"""
    .text
    .global _start
    _start:
        movi r1, {a_bits}
        fmovr f0, r1
        movi r1, {b_bits}
        fmovr f1, r1
        {op} f0, f1
        rmovf r2, f0
        ; report low and high halves through memory + stdout-free exit
        movi r3, out
        st [r3], r2
        ld r1, [r3]
        andi r1, 0xff
        movi r0, 0
        syscall
        hlt
    .data
    out: .quad 0
    """)
    return result


class TestDoubleArithmetic:
    @given(a=f64s, b=f64s)
    @settings(max_examples=12, deadline=None)
    def test_faddd_matches_python(self, a, b):
        result = _run_fp_binop("faddd", _f64_bits(a), _f64_bits(b))
        expected = _f64_bits(a + b) & 0xFF
        assert result.exit_code == expected

    @given(a=f64s, b=f64s)
    @settings(max_examples=12, deadline=None)
    def test_fmuld_matches_python(self, a, b):
        result = _run_fp_binop("fmuld", _f64_bits(a), _f64_bits(b))
        assert result.exit_code == (_f64_bits(a * b) & 0xFF)

    def test_fdivd_by_zero_gives_inf(self):
        result = run_asm(f"""
        .text
        .global _start
        _start:
            movi r1, {_f64_bits(1.0)}
            fmovr f0, r1
            movi r1, 0
            fmovr f1, r1
            fdivd f0, f1
            rmovf r2, f0
            movi r3, {_f64_bits(math.inf)}
            cmp r2, r3
            jz .Linf
            movi r1, 0
            jmp .Lout
        .Linf:
            movi r1, 1
        .Lout:
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == 1


class TestSingleRounding:
    def test_fadds_rounds_to_single(self):
        # The fp_float bomb's arithmetic fact, at the instruction level.
        result = run_asm(f"""
        .text
        .global _start
        _start:
            movi r1, {_f32_bits(1024.0)}
            fmovr f0, r1
            movi r1, {_f32_bits(1e-5)}
            fmovr f1, r1
            fadds f0, f1
            rmovf r2, f0
            movi r3, {_f32_bits(1024.0)}
            cmp r2, r3
            jz .Lsame
            movi r1, 0
            jmp .Lout
        .Lsame:
            movi r1, 1
        .Lout:
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == 1  # 1024f + 1e-5f == 1024f

    @given(a=f32s, b=f32s)
    @settings(max_examples=12, deadline=None)
    def test_fmuls_rounds_like_numpy_style_float32(self, a, b):
        import struct as _s

        def f32_round(x):
            try:
                return _s.unpack("<f", _s.pack("<f", x))[0]
            except OverflowError:
                # struct refuses out-of-range doubles; IEEE 754 (and the
                # VM's f32_to_bits) saturates them to signed infinity.
                return math.copysign(math.inf, x)

        result = _run_fp_binop("fmuls", _f32_bits(a), _f32_bits(b))
        expected = _f32_bits(f32_round(f32_round(a) * f32_round(b))) & 0xFF
        assert result.exit_code == expected


class TestConversions:
    @pytest.mark.parametrize("value", [-5, 0, 7, 123456, -987654])
    def test_int_double_roundtrip(self, value):
        result = run_asm(f"""
        .text
        .global _start
        _start:
            movi r1, {value}
            cvtifd f0, r1
            cvtfid r2, f0
            mov r1, r2
            andi r1, 0xff
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == value & 0xFF

    def test_truncation_toward_zero(self):
        for value, expected in ((2.9, 2), (-2.9, -2 & 0xFF)):
            result = run_asm(f"""
            .text
            .global _start
            _start:
                movi r1, {_f64_bits(value)}
                fmovr f0, r1
                cvtfid r2, f0
                mov r1, r2
                andi r1, 0xff
                movi r0, 0
                syscall
                hlt
            """)
            assert result.exit_code == expected

    def test_single_double_widening(self):
        result = run_asm(f"""
        .text
        .global _start
        _start:
            movi r1, {_f32_bits(1.5)}
            fmovr f0, r1
            cvtsd f0, f0
            rmovf r2, f0
            movi r3, {_f64_bits(1.5)}
            cmp r2, r3
            jz .Lok
            movi r1, 0
            jmp .Lout
        .Lok:
            movi r1, 1
        .Lout:
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == 1


class TestFloatCompare:
    @pytest.mark.parametrize("a,b,cc,taken", [
        (1.0, 2.0, "jb", True),
        (2.0, 1.0, "ja", True),
        (1.5, 1.5, "jz", True),
        (1.5, 1.5, "jb", False),
        (-1.0, 1.0, "jb", True),
    ])
    def test_fcmpd_branches(self, a, b, cc, taken):
        result = run_asm(f"""
        .text
        .global _start
        _start:
            movi r1, {_f64_bits(a)}
            fmovr f0, r1
            movi r1, {_f64_bits(b)}
            fmovr f1, r1
            fcmpd f0, f1
            {cc} .Lt
            movi r1, 0
            jmp .Lout
        .Lt:
            movi r1, 1
        .Lout:
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == (1 if taken else 0)
