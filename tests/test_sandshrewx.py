"""The sandshrewx column: concretizing simprocedures + concrete search.

Satellite contract: the crypto cells flip from unsolved (``Es2`` under
``angrx_nolib``) to solved, warm-cache reruns serve byte-identical
results, and the ``angrx``-family cells are untouched — their policies
carry no sandshrew capability, so their fingerprints (and cached cells)
are isolated from the new column.
"""

import json

from repro import obs
from repro.bombs import get_bomb
from repro.errors import DiagnosticKind, ErrorStage
from repro.eval import run_cell, run_table2
from repro.service import ResultStore, cell_key
from repro.symex import AngrEngine
from repro.tools import capability_fingerprint, get_tool
from repro.tools.profiles import ANGRX, ANGRX_NOLIB, SANDSHREWX


class TestConcretizingProcs:
    def test_crypto_cells_flip_to_solved(self):
        for bomb_id in ("cf_sha1", "cf_aes"):
            bomb = get_bomb(bomb_id)
            cell = run_cell(bomb, "sandshrewx")
            assert cell.outcome is ErrorStage.OK, (bomb_id, cell.label)
            assert bomb.triggers(cell.report.solution)

    def test_nolib_crypto_cell_stays_unsolved(self):
        cell = run_cell(get_bomb("cf_sha1"), "angrx_nolib")
        assert cell.outcome is ErrorStage.ES2

    def test_opaque_concretization_is_diagnosed(self):
        bomb = get_bomb("cf_sha1")
        engine = AngrEngine(bomb.image, SANDSHREWX)
        engine.explore(bomb.seed_argv, argv0=b"cf_sha1")
        assert engine.opaque_concretized
        details = [d.detail for d in engine.diags
                   if d.kind is DiagnosticKind.CONCRETIZED_ENV]
        assert any("sandshrew" in d for d in details)

    def test_stateful_externals_solve_via_replay_log(self):
        # srand/rand share library state; the per-path opaque-call log
        # replays them in order, so the PRNG-gated bomb still solves.
        cell = run_cell(get_bomb("ef_srand"), "sandshrewx")
        assert cell.outcome is ErrorStage.OK

    def test_negative_bomb_claims_nothing(self):
        # neg_square routes pow() through the concretizer, but the
        # unreachable guard keeps the fallback search from even running.
        report = get_tool("sandshrewx").analyze_bomb(get_bomb("neg_square"))
        assert not report.solved
        assert not report.false_positive


class TestFingerprintIsolation:
    def test_angr_policies_carry_no_sandshrew_capability(self):
        for policy in (ANGRX, ANGRX_NOLIB):
            assert policy.simproc_table == "default"
            assert policy.concrete_fallback_budget == 0
        assert SANDSHREWX.simproc_table == "sandshrew"
        assert SANDSHREWX.concrete_fallback_budget > 0

    def test_fingerprints_are_distinct(self):
        prints = {capability_fingerprint(name)
                  for name in ("angrx", "angrx_nolib", "sandshrewx")}
        assert len(prints) == 3

    def test_sandshrew_cells_key_separately(self):
        bomb = get_bomb("cf_sha1")
        assert cell_key(bomb, "sandshrewx") != cell_key(bomb, "angrx_nolib")


class TestWarmCache:
    def test_warm_rerun_is_byte_identical(self, tmp_path):
        bombs, tools = ("cf_sha1",), ("sandshrewx",)
        rec = obs.Recorder()
        with obs.recording(rec):
            cold = run_table2(bomb_ids=bombs, tools=tools, cache=tmp_path)
        cold_counters = rec.snapshot()["counters"]
        assert cold_counters["service.cache_misses"] == 1

        stored = sorted(p for p in tmp_path.rglob("*.json")
                        if p.parent.name != "corpus")
        cold_bytes = [p.read_bytes() for p in stored]

        rec = obs.Recorder()
        with obs.recording(rec):
            warm = run_table2(bomb_ids=bombs, tools=tools, cache=tmp_path)
        warm_counters = rec.snapshot()["counters"]
        assert warm_counters["service.cache_hits"] == 1
        # The warm run re-executed nothing: no solver queries, no
        # fallback executions, and the stored objects are untouched.
        assert warm_counters.get("smt.queries", 0) == 0
        assert warm_counters.get("symex.fallback_execs", 0) == 0
        assert [p.read_bytes() for p in stored] == cold_bytes

        cold_cell = cold.cells[("cf_sha1", "sandshrewx")]
        warm_cell = warm.cells[("cf_sha1", "sandshrewx")]
        assert json.dumps(warm_cell.to_json(), sort_keys=True) == \
            json.dumps(cold_cell.to_json(), sort_keys=True)
        assert warm_cell.report.solution == cold_cell.report.solution
