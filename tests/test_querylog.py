"""SMT flight recorder: codec round-trips, digests, classes, recorder.

The codec tests lean on the interner: decoding through
:func:`repro.smt.expr.intern_node` must hand back the *same object* the
encoder saw (``is``, not just ``==``), because that identity is what
keeps record digests memoizable and the decoded DAG node-for-node equal
to the captured one.
"""

import json
import sys

import pytest

from repro.smt import querylog
from repro.smt.expr import (
    FP_OPS,
    _BV_BINOPS,
    _CMP_OPS,
    intern_node,
    mk_binop,
    mk_cmp,
    mk_const,
    mk_eq,
    mk_extract,
    mk_ite,
    mk_var,
)
from repro.smt.querylog import (
    CODEC_OPS,
    QueryRecorder,
    build_record,
    decode_expr,
    decode_exprs,
    decode_record,
    encode_expr,
    encode_exprs,
    feature_class,
    query_features,
)


def _sample_node(op: str):
    """Build one interned node exercising *op* exactly (no folding)."""
    a = intern_node("var", 32, name="a")
    b = intern_node("var", 32, name="b")
    cond = intern_node("var", 1, name="p")
    if op == "const":
        return intern_node("const", 32, value=0xDEAD)
    if op == "var":
        return a
    if op == "bvnot":
        return intern_node("bvnot", 32, (a,))
    if op == "ite":
        return intern_node("ite", 32, (cond, a, b))
    if op == "extract":
        return intern_node("extract", 8, (a,), value=(15 << 16) | 8)
    if op == "concat":
        return intern_node("concat", 64, (a, b))
    if op in ("zext", "sext"):
        return intern_node(op, 64, (a,))
    if op in _CMP_OPS:
        return intern_node(op, 1, (a, b))
    if op in _BV_BINOPS:
        return intern_node(op, 32, (a, b))
    if op in FP_OPS:
        # Arity is irrelevant to the codec; use two args uniformly.
        return intern_node(op, 64, (a, b))
    raise AssertionError(f"unhandled op {op}")


class TestCodecRoundTrip:
    @pytest.mark.parametrize("op", sorted(CODEC_OPS))
    def test_every_op_round_trips_to_the_same_interned_node(self, op):
        node = _sample_node(op)
        decoded = decode_expr(encode_expr(node))
        assert decoded is node

    def test_table_is_json_safe_and_deterministic(self):
        expr = mk_eq(mk_binop("add", mk_var("x", 32), mk_const(7, 32)),
                     mk_const(9, 32))
        nodes = encode_expr(expr)
        assert json.loads(json.dumps(nodes)) == nodes
        assert encode_expr(expr) == nodes

    def test_shared_subterms_encode_once(self):
        x = mk_var("x", 32)
        shared = mk_binop("mul", x, x)
        expr = mk_binop("add", shared, shared)
        nodes = encode_expr(expr)
        # x, mul, add — sharing survives, no duplicate entries.
        assert len(nodes) == 3
        assert decode_expr(nodes) is expr

    def test_multi_root_table_shares_across_roots(self):
        x = mk_var("x", 32)
        r1 = mk_eq(x, mk_const(1, 32))
        r2 = mk_eq(x, mk_const(2, 32))
        nodes, order = encode_exprs([r1, r2])
        table = decode_exprs(nodes)
        assert table[order[0]] is r1
        assert table[order[1]] is r2
        assert sum(1 for rec in nodes if rec[0] == "v") == 1

    def test_deep_chain_beyond_recursion_limit(self):
        expr = mk_var("x", 32)
        depth = sys.getrecursionlimit() + 500
        for _ in range(depth):
            expr = intern_node("bvnot", 32, (expr,))
        nodes = encode_expr(expr)
        assert len(nodes) == depth + 1
        assert decode_expr(nodes) is expr

    def test_decode_rejects_unknown_op_and_forward_reference(self):
        with pytest.raises(ValueError, match="unknown op"):
            decode_exprs([["frobnicate", 32, []]])
        with pytest.raises(ValueError, match="forward reference"):
            decode_exprs([["bvnot", 32, [1]], ["v", 32, "x"]])
        with pytest.raises(ValueError, match="empty"):
            decode_expr([])


class TestRecords:
    def _tagged(self):
        x = mk_var("x", 32)
        return [((0x40, "negation"), mk_eq(x, mk_const(5, 32))),
                (None, mk_cmp("ult", x, mk_const(100, 32)))]

    def test_digest_is_stable_and_content_addressed(self):
        budget = {"max_conflicts": 1000, "max_clauses": 10, "max_nodes": None}
        d1, body1 = build_record(self._tagged(), [], budget)
        d2, body2 = build_record(self._tagged(), [], budget)
        assert d1 == d2 and body1 == body2
        # Any constraint change moves the digest.
        d3, _ = build_record(self._tagged()[:1], [], budget)
        assert d3 != d1

    def test_budget_participates_in_the_digest(self):
        tagged = self._tagged()
        d1, _ = build_record(tagged, [], {"max_conflicts": 10})
        d2, _ = build_record(tagged, [], {"max_conflicts": 20})
        assert d1 != d2

    def test_record_round_trip_preserves_tags_and_assumptions(self):
        tagged = self._tagged()
        assumption = mk_eq(mk_var("x", 32), mk_const(5, 32))
        _, body = build_record(tagged, [assumption], {})
        tagged2, assumptions2 = decode_record(body)
        assert [t for t, _ in tagged2] == [[0x40, "negation"], None] or \
            [t for t, _ in tagged2] == [(0x40, "negation"), None]
        assert [e for _, e in tagged2] == [e for _, e in tagged]
        assert assumptions2 == [assumption]
        assert tagged2[0][1] is tagged[0][1]

    def test_decode_record_rejects_wrong_schema(self):
        _, body = build_record(self._tagged(), [], {})
        body["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            decode_record(body)


class TestFeaturesAndClasses:
    def test_features_of_a_small_query(self):
        x = mk_var("x", 32)
        expr = mk_eq(mk_binop("add", x, mk_const(1, 32)), mk_const(2, 32))
        nodes = encode_expr(expr)
        features = query_features(nodes, 1, 0)
        assert features["vars"] == 1
        assert features["nodes"] == len(nodes)
        assert features["max_width"] == 32
        assert features["depth"] >= 3
        assert features["constraints"] == 1 and features["assumptions"] == 0

    def test_class_rules_first_match(self):
        base = {"fp_ops": 0, "nodes": 100, "ites": 0, "ite_density": 0.0,
                "depth": 10}
        assert feature_class({**base, "fp_ops": 1}) == "fp-theory"
        assert feature_class({**base, "nodes": 20_001}) == "crypto-scale"
        assert feature_class({**base, "ites": 8}) == "select-ite"
        assert feature_class({**base, "ite_density": 0.05}) == "select-ite"
        assert feature_class({**base, "depth": 256}) == "deep-serial"
        assert feature_class({**base, "nodes": 64}) == "small-linear"
        assert feature_class(base) == "bitvector-mix"

    def test_every_class_name_is_enumerated(self):
        assert set(querylog.FEATURE_CLASSES) >= {
            "fp-theory", "crypto-scale", "select-ite", "deep-serial",
            "small-linear", "bitvector-mix"}


class TestQueryRecorder:
    def test_identical_queries_dedup_to_one_record(self):
        rec = QueryRecorder()
        rec.set_cell("bomb", "tool")
        x = mk_var("x", 32)
        tagged = [((1, "negation"), mk_eq(x, mk_const(5, 32)))]
        budget = {"max_conflicts": 10}
        d1 = rec.record_check(tagged, [], (1, "negation"), "sat", 0.01,
                              {"conflicts": 2}, budget=budget)
        d2 = rec.record_check(tagged, [], (1, "negation"), "sat", 0.02,
                              {"conflicts": 0}, budget=budget)
        assert d1 == d2
        assert rec.queries == 2 and rec.dedup_hits == 1
        assert len(rec.records) == 1
        occs = rec.occurrences[("bomb", "tool")]
        assert [o["wall_s"] for o in occs] == [0.01, 0.02]
        assert occs[0]["class"] == "small-linear"
        summary = rec.summary()
        assert summary["distinct"] == 1
        assert summary["dedup_ratio"] == pytest.approx(0.5)

    def test_cell_scoping_restores_previous_context(self):
        rec = QueryRecorder()
        with querylog.capturing(rec):
            with querylog.cell("outer_bomb", "outer_tool"):
                with querylog.cell("inner_bomb", "inner_tool"):
                    assert rec._bomb == "inner_bomb"
                assert rec._bomb == "outer_bomb"
        assert querylog.active() is None

    def test_module_hook_is_noop_without_recorder(self):
        assert querylog.active() is None
        querylog.record_check([], [], None, "sat", 0.0, {})  # must not raise

    def test_persist_skips_empty_cells_and_dedups_records(self, tmp_path):
        from repro.service.store import ResultStore

        store = ResultStore(tmp_path / "store")
        rec = QueryRecorder()
        rec.set_cell("b1", "t1")
        x = mk_var("x", 32)
        tagged = [(None, mk_eq(x, mk_const(5, 32)))]
        rec.record_check(tagged, [], None, "sat", 0.01, {})
        rec.occurrences[("warm", "cell")] = []  # cache-served: no queries
        out = rec.persist(store)
        assert out == {"stored": 1, "skipped": 0, "cells": 1}
        # Re-persisting dedups against the store.
        assert rec.persist(store) == {"stored": 0, "skipped": 1, "cells": 1}
        assert store.get_query_manifest("warm", "cell") is None
        manifest = store.get_query_manifest("b1", "t1")
        assert len(manifest["queries"]) == 1


class TestSolverIntegration:
    def test_solver_check_is_recorded_with_verdict_and_budget(self):
        from repro.smt.solver import Solver

        rec = QueryRecorder()
        with querylog.capturing(rec):
            with querylog.cell("b", "t"):
                solver = Solver(max_conflicts=777)
                x = mk_var("x", 8)
                solver.add(mk_eq(x, mk_const(3, 8)), tag=(0x10, "negation"))
                result = solver.check()
        assert result.status == "sat"
        assert rec.queries == 1
        (digest, body), = rec.records.items()
        assert body["budget"]["max_conflicts"] == 777
        occ = rec.occurrences[("b", "t")][0]
        assert occ["status"] == "sat"
        assert occ["solver"] == "oneshot"
        tagged, assumptions = decode_record(body)
        assert assumptions == []
        assert tagged[0][1] is solver.constraints[0]

    def test_incremental_check_records_assumptions(self):
        from repro.smt.solver import IncrementalSolver

        rec = QueryRecorder()
        x = mk_var("x", 8)
        with querylog.capturing(rec):
            solver = IncrementalSolver()
            solver.assert_expr(mk_cmp("ult", x, mk_const(10, 8)))
            solver.check([mk_eq(x, mk_const(3, 8))])
            solver.check([mk_eq(x, mk_const(4, 8))])
        assert rec.queries == 2
        assert len(rec.records) == 2  # different assumptions => records
        occ = rec.occurrences[(None, None)][0]
        assert occ["solver"] == "incremental"
        for body in rec.records.values():
            assert len(body["assumptions"]) == 1

    def test_replaying_a_recorded_check_reproduces_the_verdict(self):
        from repro.smt.solver import Solver

        rec = QueryRecorder()
        with querylog.capturing(rec):
            solver = Solver()
            x = mk_var("x", 8)
            solver.add(mk_cmp("ult", x, mk_const(5, 8)))
            solver.add(mk_cmp("ult", mk_const(9, 8), x))
            recorded = solver.check()
        (_, body), = rec.records.items()
        tagged, assumptions = decode_record(body)
        fresh = Solver(max_conflicts=body["budget"]["max_conflicts"],
                       max_clauses=body["budget"]["max_clauses"])
        for tag, expr in tagged:
            fresh.add(expr, tag)
        assert fresh.check(assumptions).status == recorded.status == "unsat"


class TestPolicyFingerprints:
    def test_tool_policy_fingerprint_ignores_query_log(self):
        from repro.tools.profiles import TRACE_PROFILES

        policy = TRACE_PROFILES["tritonx"]
        base = policy.fingerprint()
        import dataclasses

        flipped = dataclasses.replace(policy, query_log=True)
        assert flipped.fingerprint() == base

    def test_symex_policy_fingerprint_ignores_query_log(self):
        from repro.tools.profiles import SYMEX_PROFILES
        import dataclasses

        policy = SYMEX_PROFILES["angrx"]
        flipped = dataclasses.replace(policy, query_log=True)
        assert flipped.fingerprint() == policy.fingerprint()

    def test_hybrid_policy_fingerprint_ignores_nested_query_log(self):
        from repro.tools.profiles import HYBRID_PROFILES
        import dataclasses

        policy = HYBRID_PROFILES["hybridx"]
        flipped = dataclasses.replace(
            policy,
            concolic=dataclasses.replace(policy.concolic, query_log=True))
        assert flipped.fingerprint() == policy.fingerprint()

    def test_capability_fingerprint_stable_under_flag(self):
        # The cache-key digest must not move when logging toggles —
        # otherwise turning the recorder on would invalidate every
        # cached cell result.
        from repro.tools.api import capability_fingerprint

        assert capability_fingerprint("tritonx")  # smoke: resolvable
