"""Tests for the expression AST: folding, rewrites, evaluation."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.smt import (
    FALSE,
    TRUE,
    eval_expr,
    mk_binop,
    mk_bool_and,
    mk_bool_not,
    mk_bool_or,
    mk_cmp,
    mk_concat,
    mk_concat_many,
    mk_const,
    mk_eq,
    mk_extract,
    mk_fp,
    mk_ite,
    mk_neg,
    mk_sext,
    mk_var,
    mk_zext,
    to_signed,
)
from repro.vm.cpu import alu, u64

u64s = st.integers(min_value=0, max_value=2**64 - 1)
_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]


class TestInterning:
    def test_structural_identity(self):
        assert mk_var("q", 8) is mk_var("q", 8)
        assert mk_const(5, 32) is mk_const(5, 32)
        a = mk_binop("add", mk_var("q", 8), mk_const(1, 8))
        b = mk_binop("add", mk_var("q", 8), mk_const(1, 8))
        assert a is b

    def test_width_distinguishes(self):
        assert mk_var("q", 8) is not mk_var("q", 16)


class TestFolding:
    @given(a=u64s, b=u64s, op=st.sampled_from(_OPS))
    def test_const_fold_matches_alu(self, a, b, op):
        alu_name = {"lshr": "shr", "ashr": "sar"}.get(op, op)
        node = mk_binop(op, mk_const(a, 64), mk_const(b, 64))
        assert node.is_const
        assert node.value == alu(alu_name, a, b)

    def test_identity_rewrites(self):
        x = mk_var("x_id", 64)
        zero, ones = mk_const(0, 64), mk_const(2**64 - 1, 64)
        assert mk_binop("add", x, zero) is x
        assert mk_binop("xor", x, zero) is x
        assert mk_binop("and", x, ones) is x
        assert mk_binop("mul", x, mk_const(1, 64)) is x
        assert mk_binop("and", x, zero).value == 0
        assert mk_binop("xor", x, x).value == 0
        assert mk_binop("sub", x, x).value == 0

    def test_cmp_folding(self):
        assert mk_cmp("ult", mk_const(1, 8), mk_const(2, 8)) is TRUE
        assert mk_cmp("slt", mk_const(0xFF, 8), mk_const(0, 8)) is TRUE  # -1 < 0
        x = mk_var("x_cf", 8)
        assert mk_eq(x, x) is TRUE
        assert mk_cmp("ult", x, x) is FALSE

    def test_ite_folding(self):
        x, y = mk_var("x_if", 8), mk_var("y_if", 8)
        assert mk_ite(TRUE, x, y) is x
        assert mk_ite(FALSE, x, y) is y
        cond = mk_eq(x, y)
        assert mk_ite(cond, x, x) is x

    def test_bool_connectives(self):
        p = mk_eq(mk_var("p_b", 8), mk_const(1, 8))
        assert mk_bool_and(p, TRUE) is p
        assert mk_bool_and(p, FALSE) is FALSE
        assert mk_bool_or(p, FALSE) is p
        assert mk_bool_or(p, TRUE) is TRUE
        assert mk_bool_not(mk_bool_not(p)) is p


class TestBitPlumbing:
    def test_extract_of_const(self):
        assert mk_extract(mk_const(0xABCD, 16), 15, 8).value == 0xAB

    def test_extract_full_width_is_identity(self):
        x = mk_var("x_e", 16)
        assert mk_extract(x, 15, 0) is x

    def test_extract_of_extract_fuses(self):
        x = mk_var("x_ee", 32)
        inner = mk_extract(x, 23, 8)
        outer = mk_extract(inner, 11, 4)
        assert outer.op == "extract"
        assert outer.args[0] is x
        assert (outer.value >> 16, outer.value & 0xFFFF) == (19, 12)

    def test_concat_of_adjacent_extracts_fuses(self):
        x = mk_var("x_cf2", 64)
        parts = [mk_extract(x, 8 * i + 7, 8 * i) for i in range(8)]
        back = mk_concat_many(list(reversed(parts)))
        assert back is x  # the store/load round trip collapses

    def test_concat_const(self):
        assert mk_concat(mk_const(0xAB, 8), mk_const(0xCD, 8)).value == 0xABCD

    def test_zext_sext(self):
        assert mk_zext(mk_const(0xFF, 8), 16).value == 0xFF
        assert mk_sext(mk_const(0xFF, 8), 16).value == 0xFFFF
        x = mk_var("x_z", 8)
        assert mk_zext(x, 8) is x
        with pytest.raises(SolverError):
            mk_zext(mk_var("x_z2", 16), 8)

    def test_extract_bounds_checked(self):
        with pytest.raises(SolverError):
            mk_extract(mk_var("x_eb", 8), 8, 0)


class TestEval:
    @given(a=u64s, b=u64s, op=st.sampled_from(_OPS))
    def test_eval_matches_fold(self, a, b, op):
        x, y = mk_var("ea", 64), mk_var("eb", 64)
        node = mk_binop(op, x, y)
        folded = mk_binop(op, mk_const(a, 64), mk_const(b, 64))
        assert eval_expr(node, {"ea": a, "eb": b}) == folded.value

    def test_eval_missing_vars_default_zero(self):
        assert eval_expr(mk_var("nope", 32), {}) == 0

    def test_eval_deep_chain_no_recursion_error(self):
        node = mk_var("deep", 64)
        one = mk_const(1, 64)
        for _ in range(50_000):
            node = mk_binop("add", node, one)
        assert eval_expr(node, {"deep": 5}) == 50_005

    @given(v=u64s)
    def test_eval_ite(self, v):
        x = mk_var("ei", 64)
        node = mk_ite(mk_cmp("ult", x, mk_const(100, 64)),
                      mk_const(1, 64), mk_const(2, 64))
        assert eval_expr(node, {"ei": v}) == (1 if v < 100 else 2)

    def test_eval_sext(self):
        node = mk_sext(mk_var("es", 8), 64)
        assert eval_expr(node, {"es": 0x80}) == u64(-128)


class TestFpNodes:
    def test_fp_const_fold(self):
        a = struct.unpack("<I", struct.pack("<f", 1.5))[0]
        b = struct.unpack("<I", struct.pack("<f", 2.25))[0]
        node = mk_fp("fadd32", mk_const(a, 32), mk_const(b, 32))
        assert node.is_const
        assert struct.unpack("<f", struct.pack("<I", node.value))[0] == 3.75

    def test_fp_detection(self):
        x = mk_var("fx", 32)
        node = mk_fp("flt32", x, mk_const(0, 32))
        assert node.contains_fp()
        assert not mk_binop("add", mk_var("ix", 64), mk_const(1, 64)).contains_fp()

    def test_transcendental_eval(self):
        bits = struct.unpack("<Q", struct.pack("<d", 1.5))[0]
        node = mk_fp("fsin64", mk_var("tv", 64))
        got = eval_expr(node, {"tv": bits})
        value = struct.unpack("<d", struct.pack("<Q", got))[0]
        assert abs(value - math.sin(1.5)) < 1e-12

    def test_fpow(self):
        three = struct.unpack("<Q", struct.pack("<d", 3.0))[0]
        two = struct.unpack("<Q", struct.pack("<d", 2.0))[0]
        node = mk_fp("fpow64", mk_const(three, 64), mk_const(two, 64))
        assert struct.unpack("<d", struct.pack("<Q", node.value))[0] == 9.0


class TestMisc:
    def test_variables(self):
        node = mk_binop("add", mk_var("aa", 64),
                        mk_binop("mul", mk_var("bb", 64), mk_const(3, 64)))
        assert node.variables() == {"aa", "bb"}

    def test_size_memoized_and_counts_dag_nodes(self):
        x = mk_var("sz", 64)
        shared = mk_binop("add", x, mk_const(1, 64))
        node = mk_binop("mul", shared, shared)
        assert node.size() == 4  # x, 1, add, mul
        assert node.size() == 4

    def test_neg(self):
        assert eval_expr(mk_neg(mk_var("ng", 64)), {"ng": 5}) == u64(-5)

    @given(v=u64s, w=st.sampled_from([1, 8, 16, 32, 64]))
    def test_to_signed_roundtrip(self, v, w):
        assert to_signed(v, w) & ((1 << w) - 1) == v & ((1 << w) - 1)
