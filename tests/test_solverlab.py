"""Solver lab: capture -> replay -> report -> diff over a real slice.

One module-scoped capture of a small real matrix slice feeds every
test — capture is the expensive step, and the acceptance criteria
(zero replay drift, full wall attribution, store-level dedup) are all
properties of one corpus.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.eval import solverlab
from repro.service.store import ResultStore
from repro.smt import querylog

BOMBS = ("cp_stack", "sv_time")
TOOLS = ("tritonx", "bapx")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("solverlab") / "store"
    doc = solverlab.capture_matrix(bombs=BOMBS, tools=TOOLS,
                                   cache=str(root), verbose=False)
    return str(root), doc


class TestCapture:
    def test_capture_summary_shape(self, corpus):
        root, doc = corpus
        assert doc["kind"] == "solverlab-capture"
        assert doc["queries"] > 0
        assert 0 < doc["distinct"] <= doc["queries"]
        assert doc["stored"] == doc["distinct"]
        assert doc["dedup_ratio"] == pytest.approx(
            1.0 - doc["distinct"] / doc["queries"], abs=1e-6)
        # The recorder was uninstalled again after the capture.
        assert querylog.active() is None

    def test_each_distinct_query_stored_once(self, corpus):
        root, doc = corpus
        store = ResultStore(root)
        digests = store.query_digests()
        assert len(digests) == doc["distinct"]
        # Record bodies decode and re-digest to their file name.
        digest = digests[0]
        body = store.get_query(digest)
        tagged, assumptions = querylog.decode_record(body)
        rebuilt, _ = querylog.build_record(tagged, assumptions,
                                           body["budget"])
        assert rebuilt == digest

    def test_manifests_reference_stored_records(self, corpus):
        root, _ = corpus
        store = ResultStore(root)
        manifests = store.query_manifests()
        assert manifests, "capture produced no manifests"
        for manifest in manifests:
            assert manifest["queries"], "empty manifest was persisted"
            for occ in manifest["queries"]:
                assert store.get_query(occ["digest"]) is not None

    def test_warm_rerun_captures_nothing_new(self, corpus):
        root, _ = corpus
        doc = solverlab.capture_matrix(bombs=BOMBS, tools=TOOLS,
                                       cache=root, verbose=False)
        # Every cell is served from the result cache: no engine runs,
        # no queries, and no manifests are clobbered.
        assert doc["queries"] == 0
        assert doc["stored"] == 0
        assert doc["manifests"] == 0


class TestReplay:
    def test_fresh_replay_has_zero_drift(self, corpus):
        root, cap = corpus
        doc = solverlab.replay_corpus(root, mode="fresh")
        assert doc["drift"] == []
        assert doc["queries"] == cap["queries"]
        assert doc["distinct"] == cap["distinct"]
        assert doc["missing_records"] == 0

    def test_incremental_replay_has_zero_drift(self, corpus):
        root, _ = corpus
        doc = solverlab.replay_corpus(root, mode="incremental")
        assert doc["drift"] == []

    def test_class_totals_cover_every_query(self, corpus):
        root, _ = corpus
        doc = solverlab.replay_corpus(root, mode="fresh")
        assert sum(b["n"] for b in doc["classes"].values()) == doc["queries"]
        for cls in doc["classes"]:
            assert cls in querylog.FEATURE_CLASSES

    def test_tool_filter_restricts_manifests(self, corpus):
        root, _ = corpus
        full = solverlab.replay_corpus(root, mode="fresh")
        one = solverlab.replay_corpus(root, mode="fresh",
                                      tools=["tritonx"])
        assert 0 < one["queries"] < full["queries"]
        # sv_time aborts before the solve stage (Es0), so only cp_stack
        # manifests exist and the bomb filter keeps all of them.
        same = solverlab.replay_corpus(root, mode="fresh",
                                       bombs=["cp_stack"])
        assert same["queries"] == full["queries"]
        none = solverlab.replay_corpus(root, mode="fresh",
                                       bombs=["sv_time"])
        assert none["queries"] == 0 and none["cells"] == 0

    def test_bad_mode_rejected(self, corpus):
        with pytest.raises(ValueError, match="fresh|incremental"):
            solverlab.replay_corpus(corpus[0], mode="warp")


class TestReport:
    def test_report_attributes_all_wall_to_named_classes(self, corpus):
        root, cap = corpus
        doc = solverlab.report_corpus(root)
        assert doc["queries"] == cap["queries"]
        assert doc["attributed_wall_fraction"] == pytest.approx(1.0)
        assert set(doc["by_class"]) <= set(querylog.FEATURE_CLASSES)
        shares = [row["wall_share"] for row in doc["by_class"].values()]
        assert sum(shares) == pytest.approx(1.0, abs=1e-4)

    def test_top_offenders_are_sorted_and_bounded(self, corpus):
        root, _ = corpus
        doc = solverlab.report_corpus(root, top=3)
        assert len(doc["top_wall"]) <= 3
        walls = [o["wall_s"] for o in doc["top_wall"]]
        assert walls == sorted(walls, reverse=True)

    def test_prometheus_family_renders_per_class(self, corpus):
        from repro.obs.export import solverlab_class_wall

        root, _ = corpus
        text = solverlab_class_wall(solverlab.report_corpus(root))
        assert "# TYPE repro_solverlab_class_wall_seconds gauge" in text
        assert 'repro_solverlab_class_wall_seconds{class="' in text


class TestDiff:
    def test_store_vs_own_replay_has_no_drift(self, corpus, tmp_path):
        root, _ = corpus
        replay = solverlab.replay_corpus(root, mode="fresh")
        out = tmp_path / "replay.json"
        out.write_text(json.dumps(replay))
        doc = solverlab.diff_indices(solverlab.corpus_index(root),
                                     solverlab.corpus_index(out))
        assert doc["drift"] == []
        assert doc["common"] == replay["distinct"]
        assert doc["only_a"] == doc["only_b"] == 0

    def test_tampered_verdict_is_reported_as_drift(self, corpus, tmp_path):
        root, _ = corpus
        replay = solverlab.replay_corpus(root, mode="fresh")
        digest = next(iter(replay["verdicts"]))
        replay["verdicts"][digest] = (
            "unsat" if replay["verdicts"][digest] == "sat" else "sat")
        out = tmp_path / "tampered.json"
        out.write_text(json.dumps(replay))
        doc = solverlab.diff_indices(solverlab.corpus_index(root),
                                     solverlab.corpus_index(out))
        assert [d["digest"] for d in doc["drift"]] == [digest]

    def test_non_replay_json_is_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a corpus directory"):
            solverlab.corpus_index(bogus)


class TestCli:
    def test_replay_verb_exits_0_and_writes_doc(self, corpus, tmp_path,
                                                capsys):
        root, _ = corpus
        out = tmp_path / "replay.json"
        assert cli_main(["solverlab", "replay", "--cache", root,
                         "--out", str(out)]) == 0
        assert "0 drift" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["kind"] == "solverlab-replay"

    def test_report_verb_json_and_prom(self, corpus, capsys):
        root, _ = corpus
        assert cli_main(["solverlab", "report", "--cache", root,
                         "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "solverlab-report"
        assert cli_main(["solverlab", "report", "--cache", root,
                         "--prom"]) == 0
        assert "repro_solverlab_class_wall_seconds" in \
            capsys.readouterr().out

    def test_diff_verb_exit_codes(self, corpus, tmp_path, capsys):
        root, _ = corpus
        assert cli_main(["solverlab", "diff", root, root]) == 0
        capsys.readouterr()
        replay = solverlab.replay_corpus(root, mode="fresh")
        digest = next(iter(replay["verdicts"]))
        replay["verdicts"][digest] = "error"
        tampered = tmp_path / "t.json"
        tampered.write_text(json.dumps(replay))
        assert cli_main(["solverlab", "diff", root, str(tampered)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_replay_trace_out_writes_perfetto_json(self, corpus, tmp_path):
        root, _ = corpus
        trace = tmp_path / "trace.json"
        assert cli_main(["solverlab", "replay", "--cache", root,
                         "--trace-out", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "solve" in names and "solverlab" in names
