"""Attribution profiler, trace stitching, and exporter tests.

Three layers are pinned here:

* :class:`repro.obs.profile.Profiler` bucket arithmetic — PC tallies,
  query telemetry, the flush/absorb roundtrip that merges worker
  profiles into the parent across process boundaries;
* cross-process trace stitching — a ``run_table2(jobs=N)`` fan-out must
  yield one trace id with every worker's top span parented under the
  harness span, and the Chrome trace-event export must validate;
* integration — running a real cell with the profiler installed
  attributes PCs and solver queries, and a timed-out worker still
  surfaces its partial spans with an ``aborted`` attribute.
"""

import json

import pytest

from repro import obs
from repro.bombs import get_bomb
from repro.eval.harness import run_cell, run_table2
from repro.obs import profile
from repro.obs.core import bucket_counts
from repro.obs.traceviz import (
    chrome_trace,
    collapsed_stacks,
    hotspots,
    render_hotspots,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Every test starts and ends with no profiler installed."""
    profile.uninstall()
    yield
    profile.uninstall()


class TestProfilerBuckets:
    def test_record_pcs_accumulates_steps(self):
        prof = profile.Profiler()
        prof.set_cell("b", "t")
        prof.record_pcs("trace", {0x10: 3, 0x14: 1})
        prof.record_pcs("trace", {0x10: 2})
        assert prof.pc_buckets[("b", "t", "trace", 0x10)]["steps"] == 5
        assert prof.pc_buckets[("b", "t", "trace", 0x14)]["steps"] == 1

    def test_stages_and_cells_bucket_separately(self):
        prof = profile.Profiler()
        prof.set_cell("b1", "t")
        prof.record_pcs("trace", {0x10: 1})
        prof.record_pcs("extract", {0x10: 1})
        prof.set_cell("b2", "t")
        prof.record_pcs("trace", {0x10: 1})
        assert len(prof.pc_buckets) == 3

    def test_record_query_totals_and_status(self):
        prof = profile.Profiler()
        prof.set_cell("b", "t")
        prof.record_query((0x40, "negation"), 0.5, "sat",
                          conflicts=3, gates=100, learnt=2)
        prof.record_query((0x40, "negation"), 1.5, "unsat",
                          conflicts=1, gates=50, learnt=1)
        bucket = prof.query_buckets[("b", "t", 0x40, "negation")]
        assert bucket["n"] == 2
        assert bucket["wall_s"] == pytest.approx(2.0)
        assert bucket["max_s"] == pytest.approx(1.5)
        assert bucket["conflicts"] == 4
        assert bucket["gates"] == 150
        assert bucket["learnt"] == 3
        assert bucket["sat"] == 1 and bucket["unsat"] == 1

    def test_query_wall_feeds_solve_stage_pc_view(self):
        prof = profile.Profiler()
        prof.set_cell("b", "t")
        prof.record_query((0x40, "negation"), 0.25, "sat")
        assert prof.pc_buckets[("b", "t", "solve", 0x40)]["wall_s"] == \
            pytest.approx(0.25)

    def test_snapshot_sorts_hottest_first(self):
        prof = profile.Profiler()
        prof.set_cell("b", "t")
        prof.record_query((1, "negation"), 0.1)
        prof.record_query((2, "negation"), 0.9)
        snap = prof.snapshot()
        assert [q["pc"] for q in snap["queries"]] == [2, 1]
        assert snap["pcs"][0]["pc"] == 2  # solve wall dominates

    def test_module_hooks_are_noops_when_off(self):
        assert profile.active() is None
        profile.record_pcs("trace", {1: 1})
        profile.record_vm({1: 1})
        profile.record_query((1, "negation"), 0.1)
        with profile.cell("b", "t"):
            pass  # must not raise with no profiler installed

    def test_record_vm_attributes_to_innermost_stage_span(self):
        prof = profile.Profiler()
        rec = obs.Recorder()
        with obs.recording(rec, close=False), profile.profiling(prof):
            with obs.span("cell"), obs.span("trace"):
                profile.record_vm({0x30: 7})
            profile.record_vm({0x31: 1})  # no stage span open
        assert prof.pc_buckets[(None, None, "trace", 0x30)]["steps"] == 7
        assert prof.pc_buckets[(None, None, "vm", 0x31)]["steps"] == 1


class TestFlushAbsorb:
    def _worker_stream(self, bomb, pc_steps, query_wall):
        """Simulate one worker: profile a cell, return its event stream."""
        sink = obs.MemorySink()
        rec = obs.Recorder(sinks=[sink], hist_values=True)
        prof = profile.Profiler()
        with obs.recording(rec):
            with profile.profiling(prof):
                with profile.cell(bomb, "toolx"):
                    with obs.span("cell"), obs.span("trace"):
                        profile.record_vm(dict(pc_steps))
                    profile.record_query((0x99, "negation"), query_wall,
                                         "sat", gates=10)
                obs.count("widgets", 2)
                obs.observe("latency", query_wall)
        return sink.events

    def test_two_workers_merge_into_parent_profiler(self):
        stream_a = self._worker_stream("bomb_a", {0x10: 3}, 0.25)
        stream_b = self._worker_stream("bomb_b", {0x10: 5}, 0.75)

        parent_prof = profile.Profiler()
        parent = obs.Recorder(sinks=[obs.MemorySink()])
        with profile.profiling(parent_prof):
            parent.absorb(stream_a)
            parent.absorb(stream_b)
            # Duplicate counter names across workers sum exactly.
            assert parent.counters["widgets"] == 4
            # Each worker had a trace bucket plus the solve-stage bucket
            # record_query feeds.
            assert parent.counters["prof.pc_buckets"] == 4
            assert parent.hists["latency"] == [0.25, 0.75]
            # Nested spans from both workers merged into span stats.
            assert parent.span_stats["cell"]["count"] == 2
            assert parent.span_stats["trace"]["count"] == 2
            # Prof events merged into the parent profiler, per cell.
            a = parent_prof.pc_buckets[("bomb_a", "toolx", "trace", 0x10)]
            b = parent_prof.pc_buckets[("bomb_b", "toolx", "trace", 0x10)]
            assert (a["steps"], b["steps"]) == (3, 5)
            qa = parent_prof.query_buckets[("bomb_a", "toolx", 0x99,
                                            "negation")]
            assert qa["n"] == 1 and qa["gates"] == 10
            # Prof events were routed to the profiler, not re-emitted.
            sink = parent.sinks[0]
            assert not any(e.get("t") == "prof" for e in sink.events)

    def test_absorb_reemits_prof_events_without_a_profiler(self):
        stream = self._worker_stream("bomb_a", {0x10: 3}, 0.25)
        sink = obs.MemorySink()
        parent = obs.Recorder(sinks=[sink])
        parent.absorb(stream)  # no profiler installed: lossless passthrough
        assert any(e.get("t") == "prof" for e in sink.events)

    def test_flush_absorb_roundtrip_is_exact(self):
        prof = profile.Profiler()
        prof.set_cell("b", "t")
        prof.record_pcs("trace", {1: 4, 2: 9})
        prof.record_query((3, "negation"), 0.5, "sat", conflicts=2)
        sink = obs.MemorySink()
        rec = obs.Recorder(sinks=[sink])
        prof.flush_to(rec)

        clone = profile.Profiler()
        for event in sink.events:
            if event.get("t") == "prof":
                clone.absorb_event(event)
        assert clone.pc_buckets == prof.pc_buckets
        assert clone.query_buckets == prof.query_buckets

    def test_max_latency_merges_as_max_not_sum(self):
        a, b = profile.Profiler(), profile.Profiler()
        a.record_query((1, "negation"), 0.9)
        b.record_query((1, "negation"), 0.4)
        sink = obs.MemorySink()
        rec = obs.Recorder(sinks=[sink])
        a.flush_to(rec)
        b.flush_to(rec)
        merged = profile.Profiler()
        for event in sink.events:
            if event.get("t") == "prof":
                merged.absorb_event(event)
        bucket = merged.query_buckets[(None, None, 1, "negation")]
        assert bucket["max_s"] == pytest.approx(0.9)
        assert bucket["wall_s"] == pytest.approx(1.3)


class TestTraceStitching:
    def test_parallel_table2_yields_one_stitched_trace(self):
        sink = obs.MemorySink()
        rec = obs.Recorder(sinks=[sink], hist_values=True)
        with obs.recording(rec, close=False):
            with profile.profiling(profile.Profiler()):
                run_table2(bomb_ids=("cp_stack", "sv_time"),
                           tools=("tritonx",), jobs=2)
        rec.close()
        spans = [e for e in sink.events if e["t"] == "span"]
        # One trace id across harness + both workers.
        assert {e["trace"] for e in spans} == {rec.trace_id}
        assert len({e["pid"] for e in spans}) >= 2
        # Every worker top-level span is parented under the table2 span.
        table2 = [e for e in spans if e["name"] == "table2"]
        assert len(table2) == 1
        worker_tops = [e for e in spans
                       if e["pid"] != rec.pid and "/" not in e["path"]]
        assert worker_tops
        assert all(e["parent_id"] == table2[0]["span_id"]
                   for e in worker_tops)
        # Span ids are unique even across processes (pid-prefixed).
        ids = [e["span_id"] for e in spans]
        assert len(ids) == len(set(ids))

    def test_chrome_trace_export_validates(self):
        sink = obs.MemorySink()
        rec = obs.Recorder(sinks=[sink], hist_values=True)
        with obs.recording(rec, close=False):
            run_table2(bomb_ids=("cp_stack",), tools=("tritonx",), jobs=2)
        rec.close()
        doc = chrome_trace(sink.events)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["trace_ids"] == [rec.trace_id]
        # Survives a JSON roundtrip (what --trace-out writes to disk).
        assert validate_chrome_trace(json.loads(json.dumps(doc))) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"table2", "cell"} <= names
        # Process metadata distinguishes the harness from workers.
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        roles = {e["args"]["name"].split(" ")[0] for e in meta}
        assert {"harness", "worker"} <= roles

    def test_collapsed_stacks_from_span_stream(self):
        events = [
            {"t": "span", "name": "trace", "path": "cell/trace",
             "wall_s": 0.25, "cpu_s": 0.0},
            {"t": "span", "name": "cell", "path": "cell",
             "wall_s": 1.0, "cpu_s": 0.0},
        ]
        text = collapsed_stacks(events)
        assert "cell;trace 250000" in text
        assert "cell 750000" in text  # self time: 1.0 - 0.25


class TestIntegration:
    def test_profiled_cell_attributes_pcs_and_queries(self):
        prof = profile.Profiler()
        rec = obs.Recorder(sinks=[obs.MemorySink()], hist_values=True)
        with obs.recording(rec, close=False):
            with profile.profiling(prof):
                cell = run_cell(get_bomb("cp_stack"), "tritonx")
        assert str(cell.outcome) == "ok"
        snap = prof.snapshot()
        # The VM tallied per-PC steps in the trace stage...
        trace_rows = [r for r in snap["pcs"] if r["stage"] == "trace"]
        assert trace_rows and sum(r["steps"] for r in trace_rows) > 0
        assert all(r["bomb"] == "cp_stack" and r["tool"] == "tritonx"
                   for r in snap["pcs"])
        # ...and every solver query carries its guard's (pc, kind) tag.
        assert snap["queries"]
        assert all(isinstance(r["pc"], int) for r in snap["queries"])
        assert {r["kind"] for r in snap["queries"]} == {"negation"}
        # Bookkeeping counters flushed when the profiling block exited.
        with profile.profiling(prof):
            pass
        assert rec.counters["prof.pc_buckets"] > 0

    def test_explorer_tags_queries_with_explore_kind(self):
        prof = profile.Profiler()
        with obs.recording(obs.Recorder(), close=False):
            with profile.profiling(prof):
                run_cell(get_bomb("cp_stack"), "angrx_nolib")
        kinds = {r["kind"] for r in prof.snapshot()["queries"]}
        assert "explore" in kinds
        explore_pcs = [r for r in prof.snapshot()["pcs"]
                       if r["stage"] == "explore"]
        assert explore_pcs and sum(r["steps"] for r in explore_pcs) > 0

    def test_disabled_profiler_adds_no_per_step_state(self):
        from repro.trace.tracer import record_trace

        bomb = get_bomb("cp_stack")
        assert profile.active() is None
        trace = record_trace(bomb.image, [b"prog"] + bomb.seed_argv[1:])
        assert trace.instruction_count > 0  # ran with _pc_counts gated off

    def test_hotspot_report_renders_real_cell(self):
        prof = profile.Profiler()
        with obs.recording(obs.Recorder(), close=False):
            with profile.profiling(prof):
                run_cell(get_bomb("cp_stack"), "tritonx")
        text = render_hotspots(prof.snapshot(), top=5)
        assert "Hot PCs" in text and "Hot guards" in text
        assert "cp_stack/tritonx" in text
        assert "0x" in text
        hot = hotspots(prof.snapshot(), top=3)
        assert len(hot["pcs"]) <= 3 and len(hot["queries"]) <= 3


class TestAbortedSpans:
    def test_abort_open_spans_flushes_with_reason(self):
        sink = obs.MemorySink()
        rec = obs.Recorder(sinks=[sink])
        with obs.recording(rec, close=False):
            obs.span("cell").__enter__()
            obs.span("explore").__enter__()
            rec.abort_open_spans("sigterm")
        spans = {e["name"]: e for e in sink.events if e["t"] == "span"}
        assert spans["explore"]["attrs"]["aborted"] == "sigterm"
        assert spans["cell"]["attrs"]["aborted"] == "sigterm"
        assert spans["explore"]["path"] == "cell/explore"
        assert rec._stack == []

    def test_timed_out_worker_surfaces_partial_spans(self):
        sink = obs.MemorySink()
        rec = obs.Recorder(sinks=[sink], hist_values=True)
        with obs.recording(rec, close=False):
            cell = run_cell(get_bomb("cf_aes"), "angrx", timeout=0.4)
        assert str(cell.outcome) == "E"
        assert cell.infra_failure
        aborted = [e for e in sink.events if e["t"] == "span"
                   and e.get("attrs", {}).get("aborted")]
        assert aborted, "killed worker left no partial spans"
        assert {e["attrs"]["aborted"] for e in aborted} == {"sigterm"}
        # The worker joined the parent's trace before it was killed.
        assert {e["trace"] for e in aborted} == {rec.trace_id}


class TestBucketCounts:
    def test_values_land_in_buckets(self):
        counts = bucket_counts([0.5e-6, 5e-6, 0.2, 2.0, 1e7])
        assert counts[repr(1e-06)] == 1   # 0.5µs ≤ 1µs
        assert counts[repr(5e-06)] == 1
        assert counts[repr(1.0)] == 1
        assert counts[repr(10.0)] == 1
        assert counts["+Inf"] == 1
        assert sum(counts.values()) == 5

    def test_sub_millisecond_values_resolve_within_a_decade(self):
        # Solver queries cluster between 10µs and 1ms; the 1-2.5-5
        # subdivisions must separate values a decade scheme would blur.
        counts = bucket_counts([20e-6, 40e-6, 80e-6, 300e-6])
        assert counts[repr(2.5e-05)] == 1
        assert counts[repr(5e-05)] == 1
        assert counts[repr(0.0001)] == 1
        assert counts[repr(0.0005)] == 1

    def test_bounds_are_sorted_and_decade_spaced_above_1ms(self):
        from repro.obs.core import BUCKET_BOUNDS

        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert len(set(BUCKET_BOUNDS)) == len(BUCKET_BOUNDS)
        # Keys are repr()s with no float-noise digits (they become
        # Prometheus le= label values).
        for bound in BUCKET_BOUNDS:
            assert "999" not in repr(bound), repr(bound)
        assert tuple(b for b in BUCKET_BOUNDS if b >= 1e-3) == \
            tuple(10.0 ** e for e in range(-3, 7))

    def test_prometheus_exposition_renders_sub_ms_buckets(self):
        from repro.obs import prometheus_text

        text = prometheus_text({"histograms": {"smt.solve_s": {
            "count": 3, "total": 0.00053, "p50": 2e-05, "p95": 0.0005,
            "buckets": {repr(2.5e-05): 2, repr(0.0005): 1},
        }}})
        assert 'repro_smt_solve_s_bucket{le="2.5e-05"} 2' in text
        # Cumulative across the finer bounds, sorted numerically.
        assert 'repro_smt_solve_s_bucket{le="0.0005"} 3' in text
        assert text.index('le="2.5e-05"') < text.index('le="0.0005"')

    def test_prometheus_exposition_renders_cumulative_buckets(self):
        from repro.obs import prometheus_text

        text = prometheus_text({"histograms": {"smt.solve_s": {
            "count": 3, "total": 1.11, "p50": 0.01, "p95": 1.0,
            "buckets": {repr(0.01): 2, repr(10.0): 1},
        }}})
        assert "# TYPE repro_smt_solve_s histogram" in text
        assert 'repro_smt_solve_s_bucket{le="0.01"} 2' in text
        # Cumulative: the 10.0 bucket includes the 0.01 entries.
        assert 'repro_smt_solve_s_bucket{le="10.0"} 3' in text
        assert 'repro_smt_solve_s_bucket{le="+Inf"} 3' in text
        assert "repro_smt_solve_s_sum 1.11" in text
        assert "repro_smt_solve_s_count 3" in text
        # Histogram output replaces the summary fallback entirely.
        assert "quantile" not in text

    def test_bucket_series_merge_in_aggregate(self):
        from repro.obs import aggregate_events

        agg = aggregate_events([
            {"t": "hist", "name": "h", "count": 1, "total": 0.5,
             "min": 0.5, "max": 0.5, "mean": 0.5, "p50": 0.5, "p95": 0.5,
             "buckets": {repr(1.0): 1}},
            {"t": "hist", "name": "h", "count": 2, "total": 20.0,
             "min": 10.0, "max": 10.0, "mean": 10.0, "p50": 10.0,
             "p95": 10.0, "buckets": {repr(1.0): 1, repr(10.0): 1}},
        ])
        assert agg.hists["h"]["buckets"] == {repr(1.0): 2, repr(10.0): 1}
