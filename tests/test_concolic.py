"""Tests for the trace-replay concolic engine and its policies."""

import pytest

from repro.bombs import get_bomb
from repro.concolic import ConcolicEngine, ToolPolicy, TraceReplayer
from repro.errors import DiagnosticKind
from repro.lang import compile_single
from repro.tools.profiles import BAPX, TRITONX
from repro.trace import record_trace

FULL = ToolPolicy(name="full", supports_fp=True, lifts_stack_memory=True,
                  signal_trace=True, cross_thread_taint=True, div_guard=True)


def _replay(image, argv, policy=FULL, env=None):
    trace = record_trace(image, argv, env)
    return TraceReplayer(image, policy).replay(trace), trace


class TestReplayFidelity:
    @pytest.mark.parametrize("bomb_id", [
        "cp_stack", "sa_l1_array", "pp_pthread", "cp_exception",
        "fp_float", "ef_sin", "cs_syscall_name", "fig3_printf_on",
    ])
    def test_no_divergence_on_bomb_seeds(self, bomb_id):
        bomb = get_bomb(bomb_id)
        result, _trace = _replay(
            bomb.image, [bomb_id.encode()] + bomb.seed_argv,
            env=bomb.base_env(),
        )
        assert result.aborted is None, result.aborted

    def test_constraints_hold_under_seed_model(self):
        from repro.smt import eval_expr

        bomb = get_bomb("cp_stack")
        result, _ = _replay(bomb.image, [b"x"] + bomb.seed_argv, env=bomb.base_env())
        seed_model = {}
        for name, (k, i) in result.var_layout.items():
            arg = result.seed_argv[k]
            seed_model[name] = arg[i] if i < len(arg) else 0
        for constraint in result.constraints:
            assert eval_expr(constraint.expr, seed_model) == 1

    def test_var_layout_covers_argv(self):
        image = compile_single(
            "int main(int argc, char **argv) { return atoi(argv[1]); }"
        )
        result, _ = _replay(image, [b"p", b"123"])
        assert {"arg1_0", "arg1_1", "arg1_2"} <= set(result.var_layout)


class TestPolicyGating:
    def test_stack_lifting_gap_drops_taint(self):
        bomb = get_bomb("cp_stack")
        argv = [b"x"] + bomb.seed_argv
        full, _ = _replay(bomb.image, argv, FULL)
        assert not full.diagnostics.has(DiagnosticKind.LIFT_INCOMPLETE)
        gapped, _ = _replay(bomb.image, argv, BAPX)
        assert gapped.diagnostics.has(DiagnosticKind.LIFT_INCOMPLETE)

    def test_signal_truncation(self):
        bomb = get_bomb("cp_exception")
        argv = [b"x"] + bomb.seed_argv
        with_signals, _ = _replay(bomb.image, argv, FULL)
        without, _ = _replay(bomb.image, argv, TRITONX)
        assert len(without.constraints) < len(with_signals.constraints)
        assert without.diagnostics.has(DiagnosticKind.LIFT_INCOMPLETE)

    def test_cross_thread_policy(self):
        bomb = get_bomb("pp_pthread")
        argv = [b"x"] + bomb.seed_argv
        shared, _ = _replay(bomb.image, argv, BAPX)
        assert not shared.diagnostics.has(DiagnosticKind.CROSS_THREAD_LOST)
        isolated, _ = _replay(bomb.image, argv, TRITONX)
        assert isolated.diagnostics.has(DiagnosticKind.CROSS_THREAD_LOST)

    def test_fp_gap(self):
        bomb = get_bomb("fp_float")
        argv = [b"x"] + bomb.seed_argv
        gapped, _ = _replay(bomb.image, argv, TRITONX)
        assert gapped.diagnostics.has(DiagnosticKind.LIFT_UNSUPPORTED)
        full, _ = _replay(bomb.image, argv, FULL)
        assert not full.diagnostics.has(DiagnosticKind.LIFT_UNSUPPORTED)

    def test_symbolic_address_diagnostic(self):
        bomb = get_bomb("sa_l1_array")
        argv = [b"x"] + bomb.seed_argv
        result, _ = _replay(bomb.image, argv, TRITONX)
        assert result.diagnostics.has(DiagnosticKind.MEM_ADDR_CONCRETIZED)

    def test_env_roundtrip_diagnostic(self):
        bomb = get_bomb("cp_file")
        argv = [b"x"] + bomb.seed_argv
        result, _ = _replay(bomb.image, argv, TRITONX)
        assert result.diagnostics.has(DiagnosticKind.TAINT_LOST)


class TestEngineLoop:
    def test_solves_simple_equality(self):
        image = compile_single(
            "int main(int argc, char **argv) {"
            " if (atoi(argv[1]) * 3 + 1 == 100) { bomb(); } return 0; }"
        )
        report = ConcolicEngine(TRITONX).run(image, [b"11"], argv0=b"x")
        assert report.solved and report.solution == [b"33"]

    def test_solves_nested_branches(self):
        image = compile_single(r'''
        int main(int argc, char **argv) {
            int v = atoi(argv[1]);
            if (v > 100) {
                if (v % 7 == 3) {
                    if (v < 120) { bomb(); }
                }
            }
            return 0;
        }
        ''')
        report = ConcolicEngine(TRITONX).run(image, [b"111"], argv0=b"x")
        assert report.solved
        v = int(report.solution[0])
        assert v > 100 and v % 7 == 3 and v < 120

    def test_respects_round_budget(self):
        import dataclasses

        image = compile_single(r'''
        int main(int argc, char **argv) {
            int v = atoi(argv[1]);
            int acc = 0;
            int i = 0;
            while (i < 8) {
                if ((v >>> i) & 1) { acc = acc + 1; }
                i = i + 1;
            }
            if (acc == 8) { bomb(); }
            return 0;
        }
        ''')
        policy = dataclasses.replace(TRITONX, rounds=2, max_queries=4)
        report = ConcolicEngine(policy).run(image, [b"0"], argv0=b"x")
        assert report.rounds <= 2 and report.queries <= 4

    def test_no_symbolic_source_diagnostic(self):
        image = compile_single(
            "int main(int argc, char **argv) {"
            " if (time() == 99) { bomb(); } return 0; }"
        )
        report = ConcolicEngine(BAPX).run(image, [b"1"], argv0=b"x")
        assert not report.solved
        assert report.diagnostics.has(DiagnosticKind.NO_SYMBOLIC_SOURCE)

    def test_seed_itself_triggering(self):
        image = compile_single(
            "int main(int argc, char **argv) { bomb(); return 0; }"
        )
        report = ConcolicEngine(TRITONX).run(image, [b"1"], argv0=b"x")
        assert report.solved and report.rounds == 1
