"""Differential tests: incremental vs one-shot solving must agree.

The incremental solver (persistent CDCL instance + shared Tseitin
cache, assumption-based queries) replaces a fresh ``Solver`` per branch
negation in the concolic engine.  These tests pin the contract that
makes that swap safe: on any query sequence — randomized constraint
sets and the actual Table II negation queries — both paths report the
same status, and every SAT model actually satisfies its query.
"""

import random

import pytest

from repro import obs
from repro.bombs import TABLE2_BOMB_IDS, get_bomb
from repro.concolic import TraceReplayer
from repro.errors import SolverError
from repro.smt import (
    IncrementalSolver,
    SatSolver,
    Solver,
    eval_expr,
    mk_binop,
    mk_bool_not,
    mk_cmp,
    mk_const,
    mk_eq,
    mk_var,
)
from repro.tools.profiles import BAPX, TRITONX
from repro.trace import record_trace


def _lit(var: int, positive: bool = True) -> int:
    return var * 2 + (0 if positive else 1)


class TestSatAssumptions:
    """The CDCL layer underneath: assumptions as pseudo-decisions."""

    def test_assumption_forces_value(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([_lit(a, False), _lit(b)])  # a -> b
        model = solver.solve(assumptions=[_lit(a)])
        assert model is not None and model[a] == 1 and model[b] == 1

    def test_unsat_under_assumptions_does_not_poison(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([_lit(a, False), _lit(b)])
        assert solver.solve(assumptions=[_lit(a), _lit(b, False)]) is None
        # The same instance answers later queries (learnt state intact).
        model = solver.solve(assumptions=[_lit(a)])
        assert model is not None and model[b] == 1
        assert solver.solve() is not None

    def test_contradictory_assumptions(self):
        solver = SatSolver()
        a = solver.new_var()
        assert solver.solve(assumptions=[_lit(a), _lit(a, False)]) is None
        assert solver.solve() is not None

    def test_assumption_falsified_at_root(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([_lit(a, False)])  # unit: ~a
        assert solver.solve(assumptions=[_lit(a)]) is None
        model = solver.solve()
        assert model is not None and model[a] == 0

    def test_learnt_clauses_survive_between_queries(self):
        # A small pigeonhole core forced via assumptions: after the
        # first (conflict-heavy) query the instance retains its learnt
        # clauses, so re-asking is much cheaper.
        rng = random.Random(7)
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(30)]
        for _ in range(120):
            chosen = rng.sample(variables, 3)
            solver.add_clause([_lit(v, rng.random() < 0.5) for v in chosen])
        first = solver.solve(assumptions=[_lit(variables[0])])
        conflicts_after_first = solver.conflicts
        second = solver.solve(assumptions=[_lit(variables[0])])
        assert (first is None) == (second is None)
        # The repeat query does at most as much new conflict work.
        assert solver.conflicts - conflicts_after_first <= \
            max(1, conflicts_after_first)

    def test_model_is_complete_and_satisfying(self):
        rng = random.Random(11)
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(15)]
        clauses = []
        for _ in range(40):
            chosen = rng.sample(variables, 3)
            clause = [_lit(v, rng.random() < 0.5) for v in chosen]
            clauses.append(clause)
            solver.add_clause(list(clause))
        model = solver.solve(assumptions=[_lit(variables[3], False)])
        if model is not None:
            assert model[variables[3]] == 0
            for clause in clauses:
                assert any(model[l >> 1] == 1 - (l & 1) for l in clause)


def _rand_term(rng: random.Random, variables, depth: int):
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return rng.choice(variables)
        return mk_const(rng.randrange(256), 8)
    op = rng.choice(["add", "sub", "mul", "and", "or", "xor"])
    return mk_binop(op, _rand_term(rng, variables, depth - 1),
                    _rand_term(rng, variables, depth - 1))


def _rand_constraint(rng: random.Random, variables):
    op = rng.choice(["eq", "ult", "ule", "slt", "sle"])
    a = _rand_term(rng, variables, 2)
    b = _rand_term(rng, variables, 2)
    node = mk_eq(a, b) if op == "eq" else mk_cmp(op, a, b)
    return mk_bool_not(node) if rng.random() < 0.5 else node


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_incremental_agrees_with_one_shot(self, seed):
        """Replay the engine's query pattern over random constraints.

        prefix[:i] + negation(prefix[i]) per step — exactly how
        ``_negate_and_enqueue`` drives the two solver flavors."""
        rng = random.Random(1000 + seed)
        variables = [mk_var(f"rd{seed}_v{k}", 8) for k in range(3)]
        constraints = [_rand_constraint(rng, variables) for _ in range(10)]
        inc = IncrementalSolver()
        for i, target in enumerate(constraints):
            negation = mk_bool_not(target)
            fresh = Solver()
            for prior in constraints[:i]:
                fresh.add(prior)
            if not negation.is_const:
                fresh.add(negation)
                one_shot = fresh.check()
                incremental = inc.check(negation)
                assert one_shot.status == incremental.status, (
                    f"step {i}: one-shot {one_shot.status} vs "
                    f"incremental {incremental.status}"
                )
                if incremental.sat:
                    query = constraints[:i] + [negation]
                    for expr in query:
                        assert eval_expr(expr, incremental.model) == 1
                    for expr in query:
                        assert eval_expr(expr, one_shot.model) == 1
            # Constant constraints are asserted too — assert_expr folds
            # them (a constant false poisons the prefix, like one-shot).
            inc.assert_expr(target)

    def test_node_budget_matches_one_shot(self):
        x = mk_var("nb_x", 64)
        node = x
        for i in range(50):
            node = mk_binop("mul", node, mk_var(f"nb_{i}", 64))
        constraint = mk_eq(node, mk_const(1, 64))
        inc = IncrementalSolver(max_nodes=50)
        inc.assert_expr(constraint)
        with pytest.raises(SolverError, match="too large"):
            inc.check(mk_cmp("ult", x, mk_const(9, 64)))

    def test_const_prefix_and_presolve_short_circuits(self):
        v = mk_var("sc_v", 8)
        inc = IncrementalSolver()
        inc.assert_expr(mk_cmp("ule", mk_const(48, 8), v))
        inc.assert_expr(mk_cmp("ule", v, mk_const(57, 8)))
        # Interval presolve refutes this without touching the SAT core.
        assert not inc.check(mk_cmp("ult", v, mk_const(40, 8))).sat
        assert inc._sat is None
        # A constant-false prefix makes every later query unsat.
        inc.assert_expr(mk_const(0, 1))
        assert not inc.check(mk_eq(v, mk_const(50, 8))).sat


def _negation_queries(bomb, policy):
    """The first-round Table II negation queries for (bomb, policy)."""
    trace = record_trace(
        bomb.image, [bomb.bomb_id.encode()] + bomb.seed_argv,
        bomb.base_env(), max_steps=policy.max_trace_steps,
        max_events=policy.max_trace_events,
    )
    replay = TraceReplayer(bomb.image, policy).replay(trace)
    return [c.expr for c in replay.constraints]


# Every Table II bomb whose seed replay yields constraints quickly; the
# crypto rows are excluded only for runtime (their one-shot re-solve of
# every growing prefix is exactly the cost this layer removes).
_DIFF_BOMBS = [b for b in TABLE2_BOMB_IDS if not b.startswith("cf_")]


class TestTable2QueriesDifferential:
    @pytest.mark.parametrize("tool", [TRITONX, BAPX], ids=lambda p: p.name)
    def test_every_negation_query_agrees(self, tool):
        total = 0
        for bomb_id in _DIFF_BOMBS:
            bomb = get_bomb(bomb_id)
            constraints = _negation_queries(bomb, tool)
            inc = IncrementalSolver(tool.solver_conflicts,
                                    tool.solver_clauses, tool.solver_nodes)
            for i, target in enumerate(constraints):
                negation = mk_bool_not(target)
                if not negation.is_const:
                    fresh = Solver(tool.solver_conflicts,
                                   tool.solver_clauses, tool.solver_nodes)
                    fresh.extend(constraints[:i])
                    fresh.add(negation)
                    try:
                        one_shot = fresh.check()
                    except SolverError as err:
                        with pytest.raises(SolverError, match="."):
                            inc.check(negation)
                        inc.assert_expr(target)
                        continue
                    incremental = inc.check(negation)
                    total += 1
                    assert one_shot.status == incremental.status, (
                        f"{bomb_id}/{tool.name} query {i}"
                    )
                    if incremental.sat:
                        for expr in constraints[:i]:
                            assert eval_expr(expr, incremental.model) == 1
                        assert eval_expr(negation, incremental.model) == 1
                inc.assert_expr(target)
        assert total > 50, f"only {total} queries exercised"


class TestObsCounters:
    def test_prefix_reuse_and_assumption_queries_recorded(self):
        v = mk_var("oc_v", 8)
        constraints = [
            mk_cmp("ult", v, mk_const(200, 8)),
            mk_cmp("ule", mk_const(3, 8), v),
            mk_eq(mk_binop("and", v, mk_const(1, 8)), mk_const(1, 8)),
        ]
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            inc = IncrementalSolver()
            for i, target in enumerate(constraints):
                inc.check(mk_bool_not(target))
                inc.assert_expr(target)
        counters = rec.snapshot()["counters"]
        assert counters["smt.assumption_queries"] == 3
        # Prefix constraints encode lazily at the query *after* their
        # assertion, so query i reuses the i-1 constraints encoded by
        # earlier queries: 0 + 0 + 1 here.
        assert counters["smt.prefix_reuse"] == 1
        assert counters["smt.queries"] == 3
        assert counters["smt.gates"] > 0
