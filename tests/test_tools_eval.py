"""Tests for the tools layer, harness and renderers (fast rows only)."""

import pytest

from repro.bombs import get_bomb
from repro.errors import ErrorStage
from repro.eval import (
    render_table1,
    render_table2,
    run_cell,
    run_dataset_stats,
    run_figure3,
    run_table2,
)
from repro.fuzz import random_fuzz
from repro.tools import all_tool_names, get_tool


class TestToolApi:
    def test_known_tools(self):
        assert all_tool_names() == ["bapx", "tritonx", "angrx", "angrx_nolib",
                                    "sandshrewx", "hybridx"]
        for name in all_tool_names() + ["rexx"]:
            assert get_tool(name).name == name

    def test_unknown_tool(self):
        with pytest.raises(KeyError):
            get_tool("klee")

    def test_trace_tool_report_shape(self):
        report = get_tool("tritonx").analyze_bomb(get_bomb("cp_stack"))
        assert report.solved and report.solution == [b"49"]
        assert report.elapsed > 0
        assert report.bomb_id == "cp_stack"

    def test_symex_tool_validates_claims(self):
        report = get_tool("angrx").analyze_bomb(get_bomb("sa_l1_array"))
        assert report.solved
        assert get_bomb("sa_l1_array").triggers(report.solution)


class TestHarnessCells:
    """Spot-check classified cells against the paper (fast rows only);
    the full matrix lives in benchmarks/bench_table2.py."""

    @pytest.mark.parametrize("bomb_id,tool,expected", [
        ("sv_time", "bapx", "Es0"),
        ("sv_time", "angrx", "Es0"),
        ("sv_syscall", "angrx", "P"),
        ("sv_arglen", "tritonx", "Es0"),
        ("sv_arglen", "angrx", "ok"),
        ("cp_stack", "bapx", "Es1"),
        ("cp_stack", "tritonx", "ok"),
        ("cp_syscall", "angrx_nolib", "P"),
        ("pp_pthread", "bapx", "ok"),
        ("pp_pthread", "tritonx", "Es2"),
        ("sa_l1_array", "tritonx", "Es3"),
        ("cs_file_name", "tritonx", "Es3"),
        ("cs_file_name", "angrx", "Es2"),
        ("fp_float", "bapx", "Es1"),
        ("fp_float", "angrx", "E"),
        ("fp_float", "angrx_nolib", "Es3"),
        ("ef_sin", "angrx_nolib", "Es2"),
        ("sv_web", "angrx", "E"),
    ])
    def test_cell_matches_paper(self, bomb_id, tool, expected):
        cell = run_cell(get_bomb(bomb_id), tool)
        assert cell.label == expected == cell.expected

    def test_run_table2_slice(self):
        result = run_table2(bomb_ids=("sv_time", "cp_stack"),
                            tools=("bapx", "tritonx"))
        assert len(result.cells) == 4
        row = result.row("cp_stack")
        assert row["tritonx"].outcome is ErrorStage.OK
        text = render_table2(result)
        assert "cp_stack" not in text  # rendered by case description
        assert "Push symbolic values" in text


class TestRenderers:
    def test_table1_render(self):
        text = render_table1()
        assert "Symbolic Array" in text
        assert text.count("x") >= 10  # the checkmarks

    def test_dataset_stats(self):
        stats = run_dataset_stats()
        assert "22 binaries" in stats.render()

    def test_figure3(self):
        result = run_figure3()
        assert result.extra_tainted > 30
        assert "paper: +61" in result.render()


class TestFuzzer:
    def test_deterministic(self):
        bomb = get_bomb("sa_l1_array")
        a = random_fuzz(bomb.image, budget=60, env=bomb.base_env(), seed=1)
        b = random_fuzz(bomb.image, budget=60, env=bomb.base_env(), seed=1)
        assert (a.triggered, a.executions) == (b.triggered, b.executions)

    def test_finds_small_domain_bomb(self):
        bomb = get_bomb("sa_l1_array")
        result = random_fuzz(bomb.image, budget=200, env=bomb.base_env())
        assert result.triggered
        assert bomb.triggers(result.trigger_input)

    def test_cannot_find_env_bomb(self):
        bomb = get_bomb("sv_time")
        result = random_fuzz(bomb.image, budget=50, env=bomb.base_env())
        assert not result.triggered
        assert result.executions == 50


class TestReport:
    def test_markdown_report_and_unsolved(self):
        from repro.eval import render_markdown_report, run_table2, unsolved_cases

        result = run_table2(bomb_ids=("sv_time",),
                            tools=("bapx", "tritonx"))
        md = render_markdown_report(result, title="slice")
        assert "# slice" in md
        assert "Es0 ✓" in md
        assert "Cell agreement" in md
        assert unsolved_cases(result) == ["sv_time"]
