"""Tests for the static symbolic engine: state, memory model, hooks."""

import pytest

from repro.bombs import get_bomb
from repro.errors import DiagnosticKind
from repro.lang import compile_single
from repro.smt import eval_expr, mk_const, mk_var
from repro.symex import AngrEngine, SymexPolicy, SymState, sym_atoi, sym_strlen


def _fast_policy(**kw):
    defaults = dict(name="t", with_libs=True, max_states=256,
                    max_total_steps=80_000, max_queries=400, time_limit=60.0)
    defaults.update(kw)
    return SymexPolicy(**defaults)


class TestSymState:
    def _image(self):
        return compile_single("int main(int argc, char **argv) { return 0; }")

    def test_memory_overlay_over_image(self):
        state = SymState(self._image())
        text = state.image.section(".text")
        # Unwritten memory reads come from the image bytes.
        byte = state.read_byte(text.vaddr)
        assert byte.is_const and byte.value == text.data[0]
        state.write_byte(text.vaddr, mk_const(0xAB, 8))
        assert state.read_byte(text.vaddr).value == 0xAB

    def test_wide_read_write(self):
        state = SymState(self._image())
        state.write_concrete_mem(0x5000, mk_const(0x1122334455667788, 64), 8)
        assert state.read_concrete_mem(0x5000, 8).value == 0x1122334455667788
        assert state.read_concrete_mem(0x5004, 2).value == 0x3344

    def test_symbolic_roundtrip_collapses(self):
        state = SymState(self._image())
        var = mk_var("ss_v", 64)
        state.write_concrete_mem(0x6000, var, 8)
        assert state.read_concrete_mem(0x6000, 8) is var

    def test_fork_isolation(self):
        state = SymState(self._image())
        state.write_byte(0x7000, mk_const(1, 8))
        state.constraints.append(mk_const(1, 1))
        fork = state.fork()
        fork.write_byte(0x7000, mk_const(2, 8))
        fork.constraints.append(mk_const(1, 1))
        assert state.read_byte(0x7000).value == 1
        assert len(state.constraints) == 1
        assert fork.sid != state.sid

    def test_cstr_helpers(self):
        state = SymState(self._image())
        for i, ch in enumerate(b"name\0"):
            state.write_byte(0x8000 + i, mk_const(ch, 8))
        assert state.read_cstr_concrete(0x8000) == b"name"
        assert not state.cstr_has_symbolic(0x8000)
        state.write_byte(0x8001, mk_var("ss_c", 8))
        assert state.cstr_has_symbolic(0x8000)


class TestSymbolicLibSummaries:
    @pytest.mark.parametrize("text", [b"", b"0", b"123", b"-45", b"9x", b"abc"])
    def test_sym_atoi_matches_guest(self, text):
        width = 8
        bts = [mk_var(f"sa_{text!r}_{i}", 8) for i in range(width)]
        node = sym_atoi(bts)
        model = {f"sa_{text!r}_{i}": (text[i] if i < len(text) else 0)
                 for i in range(width)}
        got = eval_expr(node, model)
        expected = 0
        body = text[1:] if text[:1] == b"-" else text
        digits = b""
        for ch in body:
            if 48 <= ch <= 57:
                digits += bytes([ch])
            else:
                break
        expected = int(digits) if digits else 0
        if text[:1] == b"-":
            expected = -expected
        assert got == expected % 2**64

    @pytest.mark.parametrize("text", [b"", b"a", b"hello", b"1234567"])
    def test_sym_strlen_matches(self, text):
        width = 8
        bts = [mk_var(f"sl_{text!r}_{i}", 8) for i in range(width)]
        node = sym_strlen(bts)
        model = {f"sl_{text!r}_{i}": (text[i] if i < len(text) else 0)
                 for i in range(width)}
        assert eval_expr(node, model) == len(text)


class TestEngineBasics:
    def test_claims_validated_input_for_simple_guard(self):
        image = compile_single(
            "int main(int argc, char **argv) {"
            " if (atoi(argv[1]) == 77) { bomb(); } return 0; }"
        )
        engine = AngrEngine(image, _fast_policy())
        report = engine.explore([b"1"], argv0=b"x")
        assert report.goal_claimed
        from repro.vm import Machine

        assert Machine(image, [b"x"] + report.claimed_inputs[0]).run().bomb_triggered

    def test_unreachable_reports_nothing(self):
        image = compile_single(
            "int main(int argc, char **argv) {"
            " int v = atoi(argv[1]);"
            " if (v * 0 == 5) { bomb(); } return 0; }"
        )
        report = AngrEngine(image, _fast_policy()).explore([b"1"], argv0=b"x")
        assert not report.goal_claimed

    def test_symbolic_read_resolution(self):
        bomb = get_bomb("sa_l1_array")
        report = AngrEngine(bomb.image, _fast_policy()).explore(
            bomb.seed_argv, argv0=b"x")
        assert report.claimed_inputs == [[b"6"]]

    def test_resolution_limit_concretizes(self):
        bomb = get_bomb("sa_l1_array")
        policy = _fast_policy(mem_resolve_limit=2)
        engine = AngrEngine(bomb.image, policy)
        report = engine.explore(bomb.seed_argv, argv0=b"x")
        assert report.diagnostics.has(DiagnosticKind.CONCRETIZED_READ)
        assert not any(bomb.triggers(c) for c in report.claimed_inputs)

    def test_two_level_limit(self):
        bomb = get_bomb("sa_l2_array")
        report = AngrEngine(bomb.image, _fast_policy()).explore(
            bomb.seed_argv, argv0=b"x")
        assert report.diagnostics.has(DiagnosticKind.UNMODELED_MEMORY_REF)
        assert not any(bomb.triggers(c) for c in report.claimed_inputs)

    def test_two_levels_allowed_solves(self):
        bomb = get_bomb("sa_l2_array")
        policy = _fast_policy(sym_mem_levels=2, time_limit=90.0)
        report = AngrEngine(bomb.image, policy).explore(bomb.seed_argv, argv0=b"x")
        assert any(bomb.triggers(c) for c in report.claimed_inputs)

    def test_unsupported_syscall_aborts(self):
        bomb = get_bomb("sv_web")
        report = AngrEngine(bomb.image, _fast_policy()).explore(
            bomb.seed_argv, argv0=b"x")
        assert report.aborted is not None
        assert report.diagnostics.has(DiagnosticKind.UNSUPPORTED_SYSCALL)

    def test_fp_crash_with_libs(self):
        bomb = get_bomb("fp_float")
        report = AngrEngine(bomb.image, _fast_policy()).explore(
            bomb.seed_argv, argv0=b"x")
        assert report.aborted is not None
        assert report.diagnostics.has(DiagnosticKind.ENGINE_CRASH)

    def test_nolib_hooks_installed(self):
        bomb = get_bomb("ef_sin")
        engine = AngrEngine(bomb.image, _fast_policy(with_libs=False))
        hooked = {bomb.image.symbols_by_addr()[a] for a in engine.hooks}
        assert "sin" in hooked and "atoi" in hooked
        assert "bomb" not in hooked  # the goal is never hooked

    def test_with_libs_has_no_hooks(self):
        bomb = get_bomb("ef_sin")
        assert not AngrEngine(bomb.image, _fast_policy()).hooks


class TestRexxCapabilities:
    def test_env_symbolic_time(self):
        bomb = get_bomb("sv_time")
        from repro.tools.rexx import REXX

        engine = AngrEngine(bomb.image, REXX)
        report = engine.explore(bomb.seed_argv, argv0=b"x")
        assert report.goal_claimed
        env = engine.claim_env
        assert env is not None and env.time_value % 7777 == 4321
        assert bomb.triggers(report.claimed_inputs[0], env=env)

    def test_honest_claims_reject_invented_values(self):
        bomb = get_bomb("neg_square")
        from repro.tools import get_tool

        report = get_tool("rexx").analyze_bomb(bomb)
        assert not report.goal_claimed
        assert not report.false_positive

    def test_fp_search_solves_float_bomb(self):
        bomb = get_bomb("fp_float")
        from repro.tools import get_tool

        report = get_tool("rexx").analyze_bomb(bomb)
        assert report.solved
        assert bomb.triggers(report.solution)
