"""Tests for the CDCL SAT core."""

import itertools
import random

import pytest

from repro.errors import SolverError
from repro.smt import SatSolver


def _lit(var: int, positive: bool) -> int:
    return var * 2 + (0 if positive else 1)


class TestBasics:
    def test_trivial_sat(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([_lit(a, True)])
        model = solver.solve()
        assert model is not None and model[a] == 1

    def test_trivial_unsat(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([_lit(a, True)])
        solver.add_clause([_lit(a, False)])
        assert solver.solve() is None

    def test_implication_chain(self):
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(20)]
        solver.add_clause([_lit(variables[0], True)])
        for a, b in zip(variables, variables[1:]):
            solver.add_clause([_lit(a, False), _lit(b, True)])  # a -> b
        model = solver.solve()
        assert all(model[v] == 1 for v in variables)

    def test_tautology_ignored(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([_lit(a, True), _lit(a, False)])
        assert solver.solve() is not None

    def test_duplicate_literals_deduped(self):
        solver = SatSolver()
        a = solver.new_var()
        b = solver.new_var()
        solver.add_clause([_lit(a, True), _lit(a, True), _lit(b, False)])
        assert solver.solve() is not None

    def test_empty_clause_unsat(self):
        solver = SatSolver()
        solver.new_var()
        solver.add_clause([])
        assert solver.solve() is None


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3])
    def test_php_unsat(self, holes):
        """n+1 pigeons in n holes: classically UNSAT."""
        pigeons = holes + 1
        solver = SatSolver()
        var = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            solver.add_clause([_lit(var[p][h], True) for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(pigeons), 2):
                solver.add_clause([_lit(var[p1][h], False), _lit(var[p2][h], False)])
        assert solver.solve() is None


class TestRandom3Sat:
    def test_models_satisfy_formulas(self):
        rng = random.Random(42)
        for _ in range(30):
            n_vars, n_clauses = 12, 30
            solver = SatSolver()
            variables = [solver.new_var() for _ in range(n_vars)]
            clauses = []
            for _ in range(n_clauses):
                chosen = rng.sample(variables, 3)
                clause = [_lit(v, rng.random() < 0.5) for v in chosen]
                clauses.append(clause)
                solver.add_clause(list(clause))
            model = solver.solve()
            if model is None:
                # Verify UNSAT by brute force (12 vars is cheap).
                for bits in range(1 << n_vars):
                    assignment = [(bits >> i) & 1 for i in range(n_vars)]
                    if all(
                        any(assignment[l >> 1] == (1 - (l & 1)) for l in clause)
                        for clause in clauses
                    ):
                        pytest.fail("solver said UNSAT but a model exists")
            else:
                for clause in clauses:
                    assert any(model[l >> 1] == 1 - (l & 1) for l in clause)


class TestIncremental:
    def test_blocking_clause_enumeration(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([_lit(a, True), _lit(b, True)])
        seen = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            seen.add((model[a], model[b]))
            solver.add_clause([
                _lit(a, model[a] == 0), _lit(b, model[b] == 0)
            ])
        assert seen == {(0, 1), (1, 0), (1, 1)}

    def test_conflict_budget(self):
        rng = random.Random(3)
        solver = SatSolver(max_conflicts=1)
        variables = [solver.new_var() for _ in range(40)]
        for _ in range(180):
            chosen = rng.sample(variables, 3)
            solver.add_clause([_lit(v, rng.random() < 0.5) for v in chosen])
        with pytest.raises(SolverError):
            for _ in range(200):
                if solver.solve() is None:
                    break
                # keep blocking models until the budget trips or UNSAT
                model = solver.solve()
                solver.add_clause([
                    _lit(v, model[v] == 0) for v in variables[:20]
                ])

    def test_clause_budget(self):
        solver = SatSolver(max_clauses=3)
        a = solver.new_var()
        b = solver.new_var()
        solver.add_clause([_lit(a, True), _lit(b, True)])
        solver.add_clause([_lit(a, False), _lit(b, True)])
        solver.add_clause([_lit(a, True), _lit(b, False)])
        with pytest.raises(SolverError):
            solver.add_clause([_lit(a, False), _lit(b, False)])
