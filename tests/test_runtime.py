"""Tests for the BombC runtime library (the .lib guest code)."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import runtime_function_names, runtime_sources

from .helpers import aes128_encrypt_ref, run_bc


class TestStrings:
    def test_strlen_strcmp_strcpy(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            char buf[16];
            strcpy(buf, "hello");
            print_int(strlen(buf));
            print_int(strcmp(buf, "hello"));
            print_int(strcmp(buf, "hellp") < 0);
            print_int(strcmp("b", "a") > 0);
            return 0;
        }
        ''')
        assert result.stdout == b"5011"

    def test_mem_functions(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            char a[8];
            char b[8];
            memset(a, 7, 8);
            memcpy(b, a, 8);
            print_int(memcmp(a, b, 8));
            b[3] = 9;
            print_int(memcmp(a, b, 8) != 0);
            return 0;
        }
        ''')
        assert result.stdout == b"01"

    @pytest.mark.parametrize("text,value", [
        (b"0", 0), (b"42", 42), (b"-17", -17), (b"00123", 123),
        (b"9x9", 9), (b"", 0), (b"-", 0), (b"x", 0),
    ])
    def test_atoi(self, text, value):
        result = run_bc(
            "int main(int argc, char **argv) {"
            " print_int(atoi(argv[1])); return 0; }",
            argv=[b"t", text],
        )
        assert result.stdout == str(value).encode()

    @given(v=st.integers(min_value=-(10**15), max_value=10**15))
    @settings(max_examples=15, deadline=None)
    def test_atoi_print_int_roundtrip(self, v):
        result = run_bc(
            "int main(int argc, char **argv) {"
            " print_int(atoi(argv[1])); return 0; }",
            argv=[b"t", str(v).encode()],
        )
        assert result.stdout == str(v).encode()


class TestStdio:
    def test_printf1_directives(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            printf1("d=%d x=%x c=%c s=%s %%\n", 255);
            return 0;
        }
        ''')
        # %s with an int argument prints it as a (bogus) pointer; use
        # separate calls for realistic output:
        assert result.stdout.startswith(b"d=255 x=ff c=\xff")

    def test_print_hex(self):
        result = run_bc(
            "int main(int argc, char **argv) {"
            " print_hex(0); print_str(\" \"); print_hex(0xdeadbeef);"
            " return 0; }"
        )
        assert result.stdout == b"0 deadbeef"


class TestMathLib:
    def test_sin_accuracy(self):
        import math

        result = run_bc(r'''
        int main(int argc, char **argv) {
            double x = atof(argv[1]);
            print_int((int)(sin(x) * 1000000.0));
            return 0;
        }
        ''', argv=[b"t", b"0.7853981"])
        got = int(result.stdout) / 1e6
        assert abs(got - math.sin(0.7853981)) < 1e-4

    def test_sin_range_reduction(self):
        import math

        for x in ("7.5", "-9.0"):
            result = run_bc(r'''
            int main(int argc, char **argv) {
                print_int((int)(sin(atof(argv[1])) * 1000000.0));
                return 0;
            }
            ''', argv=[b"t", x.encode()])
            assert abs(int(result.stdout) / 1e6 - math.sin(float(x))) < 1e-3

    def test_pow_integer_exponents(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            print_int((int)pow(3.0, 4.0));
            print_str(" ");
            print_int((int)(pow(2.0, -1.0) * 100.0));
            return 0;
        }
        ''')
        assert result.stdout == b"81 50"

    def test_atof(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            print_int((int)(atof(argv[1]) * 100000.0));
            return 0;
        }
        ''', argv=[b"t", b"-3.14159"])
        assert result.stdout in (b"-314159", b"-314158")  # +-1ulp truncation

    def test_fabs(self):
        result = run_bc(
            "int main(int argc, char **argv) {"
            " return (int)(fabs(-2.5) + fabs(2.5)); }"
        )
        assert result.exit_code == 5


class TestAlloc:
    def test_malloc_distinct_regions(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            char *a = malloc(32);
            char *b = malloc(32);
            a[0] = 'A';
            b[0] = 'B';
            putchar(a[0]);
            putchar(b[0]);
            print_int((int)(b - a) >= 32);
            return 0;
        }
        ''')
        assert result.stdout == b"AB1"


class TestCrypto:
    @pytest.mark.parametrize("message", [b"", b"abc", b"hello world",
                                         b"a" * 55, b"b" * 56, b"c" * 119])
    def test_sha1_matches_hashlib(self, message):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            char out[20];
            int i = 0;
            sha1(argv[1], strlen(argv[1]), out);
            while (i < 20) {
                print_hex((out[i] >>> 4) & 15);
                print_hex(out[i] & 15);
                i = i + 1;
            }
            return 0;
        }
        ''', argv=[b"t", message], max_steps=10_000_000)
        assert result.stdout.decode() == hashlib.sha1(message).hexdigest()

    def test_aes_fips_vector(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            char key[16];
            char pt[16];
            char ct[16];
            int i = 0;
            while (i < 16) { key[i] = i; pt[i] = (i << 4) | i; i = i + 1; }
            aes128_encrypt(key, pt, ct);
            i = 0;
            while (i < 16) {
                print_hex((ct[i] >>> 4) & 15);
                print_hex(ct[i] & 15);
                i = i + 1;
            }
            return 0;
        }
        ''', max_steps=10_000_000)
        assert result.stdout.decode() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    @given(key=st.binary(min_size=16, max_size=16),
           pt=st.binary(min_size=16, max_size=16))
    @settings(max_examples=3, deadline=None)
    def test_aes_matches_reference(self, key, pt):
        # Pass key/pt through argv; avoid NUL bytes which end C strings.
        key = bytes((b % 255) + 1 for b in key)
        pt = bytes((b % 255) + 1 for b in pt)
        result = run_bc(r'''
        int main(int argc, char **argv) {
            char ct[16];
            int i = 0;
            aes128_encrypt(argv[1], argv[2], ct);
            while (i < 16) {
                print_hex((ct[i] >>> 4) & 15);
                print_hex(ct[i] & 15);
                i = i + 1;
            }
            return 0;
        }
        ''', argv=[b"t", key, pt], max_steps=10_000_000)
        assert result.stdout.decode() == aes128_encrypt_ref(key, pt).hex()


class TestRand:
    def test_srand_determines_sequence(self):
        src = ("int main(int argc, char **argv) {"
               " srand(atoi(argv[1]));"
               " print_int(rand() % 100); print_str(\" \");"
               " print_int(rand() % 100); return 0; }")
        a = run_bc(src, argv=[b"t", b"5"]).stdout
        b = run_bc(src, argv=[b"t", b"5"]).stdout
        c = run_bc(src, argv=[b"t", b"6"]).stdout
        assert a == b != c


class TestRuntimeIntrospection:
    def test_function_names_cover_hook_surface(self):
        names = runtime_function_names()
        for required in ("atoi", "strlen", "sin", "pow", "rand", "srand",
                         "sha1", "aes128_encrypt", "fork", "pthread_create",
                         "malloc", "signal", "bomb"):
            assert required in names

    def test_sources_load(self):
        sources = runtime_sources()
        assert len(sources) == 10
        assert all(text.strip() for _name, text in sources)
