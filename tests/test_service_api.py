"""HTTP front door: submit over the wire, stream progress, scrape metrics.

The server under test is the real one — :func:`start_api` bound to an
ephemeral port on a background event loop — and every request goes
through ``urllib`` over a real socket, so framing (Content-Length,
``Connection: close``, NDJSON chunk boundaries) is covered, not just
the routing table.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.service import CampaignService, FleetWorker, start_api

SPEC = {"name": "t", "bombs": ["cp_stack"], "tools": ["tritonx"]}


class Api:
    """The server plus tiny request helpers for the tests."""

    def __init__(self, root, recorder=None):
        self.root = root
        self.recorder = recorder
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        async def _start():
            self.server, self.api = await start_api(
                root, port=0, recorder=recorder, poll_s=0.02)
            self.port = self.server.sockets[0].getsockname()[1]
            started.set()

        def _run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(_start())
            self.loop.run_forever()

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    def url(self, path):
        return f"http://127.0.0.1:{self.port}{path}"

    def get(self, path):
        with urllib.request.urlopen(self.url(path), timeout=10) as resp:
            return resp.status, resp.headers, resp.read().decode()

    def get_json(self, path):
        status, _, body = self.get(path)
        return status, json.loads(body)

    def post_json(self, path, doc):
        req = urllib.request.Request(
            self.url(path), data=json.dumps(doc).encode(), method="POST")
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


@pytest.fixture
def api(tmp_path):
    server = Api(tmp_path / "svc")
    yield server
    server.stop()


def http_error(fn, *args):
    """Run a request expected to fail; returns (status, parsed body)."""
    with pytest.raises(urllib.error.HTTPError) as err:
        fn(*args)
    return err.value.code, json.loads(err.value.read().decode())


class TestRouting:
    def test_index_lists_the_endpoints(self, api):
        status, doc = api.get_json("/")
        assert status == 200
        assert "POST /campaigns" in doc["endpoints"]

    def test_unknown_paths_and_campaigns_are_404_json(self, api):
        status, doc = http_error(api.get, "/nope")
        assert status == 404 and "error" in doc
        status, doc = http_error(api.get, "/campaigns/c0000000-0")
        assert status == 404 and "unknown campaign" in doc["error"]

    def test_wrong_method_is_405(self, api):
        status, doc = http_error(api.post_json, "/metrics", {})
        assert status == 405


class TestSubmitAndStatus:
    def test_submit_status_results_round_trip(self, api):
        status, doc = api.post_json("/campaigns", SPEC)
        assert status == 201
        assert doc["cells"] == 1 and doc["bombs"] == ["cp_stack"]
        cid = doc["campaign"]

        status, listing = api.get_json("/campaigns")
        assert [row["campaign"] for row in listing["campaigns"]] == [cid]

        status, snap = api.get_json(f"/campaigns/{cid}")
        assert snap["states"]["pending"] == 1

        FleetWorker(api.root, worker_id="w0", poll_s=0.01).run(drain=True)
        status, snap = api.get_json(f"/campaigns/{cid}")
        assert snap["states"]["done"] == 1

        status, table = api.get_json(f"/campaigns/{cid}/results")
        assert status == 200
        assert table["cells"][0]["bomb"] == "cp_stack"

    def test_malformed_specs_are_400_with_the_field_named(self, api):
        status, doc = http_error(api.post_json, "/campaigns",
                                 {"bmobs": ["cp_stack"]})
        assert status == 400 and "bmobs" in doc["error"]
        status, doc = http_error(api.post_json, "/campaigns",
                                 {"bombs": ["zz_*"]})
        assert status == 400 and "matches nothing" in doc["error"]
        status, doc = http_error(api.post_json, "/campaigns", [1, 2])
        assert status == 400

    def test_over_quota_submit_is_429(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "quotas.json").write_text(json.dumps(
            {"default": {"max_pending_cells": 1}}))
        api = Api(root)
        try:
            status, _ = api.post_json("/campaigns", SPEC)
            assert status == 201
            status, doc = http_error(api.post_json, "/campaigns", SPEC)
            assert status == 429
            assert "exceeds quota" in doc["error"]
        finally:
            api.stop()


class TestEventStream:
    def test_stream_follows_a_live_campaign_to_completion(self, api):
        _, doc = api.post_json("/campaigns", SPEC)
        cid = doc["campaign"]
        lines = []

        def drain_stream():
            with urllib.request.urlopen(
                    api.url(f"/campaigns/{cid}/events"), timeout=60) as resp:
                assert resp.headers["Content-Type"] == \
                    "application/x-ndjson"
                for raw in resp:
                    lines.append(json.loads(raw))

        watcher = threading.Thread(target=drain_stream)
        watcher.start()
        FleetWorker(api.root, worker_id="w0", poll_s=0.01).run(drain=True)
        watcher.join(60)
        assert not watcher.is_alive()
        # The stream terminated itself on the terminal snapshot.
        assert lines and lines[-1]["final"] is True
        assert lines[-1]["states"]["done"] == 1
        assert all(not snap["final"] for snap in lines[:-1])

    def test_stream_on_a_finished_campaign_is_one_final_line(self, api):
        _, doc = api.post_json("/campaigns", SPEC)
        cid = doc["campaign"]
        FleetWorker(api.root, worker_id="w0", poll_s=0.01).run(drain=True)
        _, _, body = api.get(f"/campaigns/{cid}/events")
        lines = [json.loads(raw) for raw in body.splitlines()]
        assert len(lines) == 1 and lines[0]["final"] is True


class TestMetrics:
    def test_metrics_exposes_recorder_counters_and_job_gauges(
            self, tmp_path):
        recorder = obs.Recorder()
        api = Api(tmp_path / "svc", recorder=recorder)
        try:
            with obs.recording(recorder, close=False):
                _, doc = api.post_json("/campaigns", SPEC)
                status, headers, body = api.get("/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert "# TYPE repro_campaign_jobs gauge" in body
            assert (f'repro_campaign_jobs{{campaign="{doc["campaign"]}",'
                    f'state="pending"}} 1.0') in body
        finally:
            api.stop()

    def test_http_traffic_is_counted(self, api):
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            api.get_json("/")
            http_error(api.get, "/nope")
        counters = rec.snapshot()["counters"]
        assert counters["service.http_requests"] == 2
        assert counters["service.http_errors"] == 1
