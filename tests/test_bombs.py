"""Tests for the logic-bomb dataset itself (Section V.A invariants)."""

import statistics

import pytest

from repro.bombs import (
    ALL_BOMB_IDS,
    CHALLENGES,
    TABLE2_BOMB_IDS,
    TOOL_COLUMNS,
    all_bombs,
    dataset_sizes,
    get_bomb,
)


class TestDatasetShape:
    def test_twenty_two_table2_bombs(self):
        assert len(TABLE2_BOMB_IDS) == 22

    def test_every_challenge_has_at_least_two_cases(self):
        # The paper: "For each challenge, we implement several programs"
        # (the symbolic-variable category has four).
        by_challenge = {}
        for bomb_id in TABLE2_BOMB_IDS:
            by_challenge.setdefault(bomb_id.split("_")[0], []).append(bomb_id)
        paper_prefixes = {p for p in CHALLENGES
                          if p not in ("ext", "neg", "fig3")}
        assert set(by_challenge) == paper_prefixes
        for prefix, bombs in by_challenge.items():
            assert len(bombs) >= 2 or prefix in ("fp",), (prefix, bombs)

    def test_paper_row_labels_present(self):
        for bomb in all_bombs(table2_only=True):
            assert set(bomb.expected) == set(TOOL_COLUMNS), bomb.bomb_id

    def test_lookup_errors(self):
        with pytest.raises(KeyError, match="unknown bomb"):
            get_bomb("nonexistent")


class TestOracles:
    @pytest.mark.parametrize("bomb_id", ALL_BOMB_IDS)
    def test_oracle_triggers_and_seed_does_not(self, bomb_id):
        assert get_bomb(bomb_id).verify_oracle(), bomb_id

    def test_negative_bomb_is_unreachable_for_many_inputs(self):
        bomb = get_bomb("neg_square")
        for arg in (b"0", b"1", b"-1", b"100", b"-7", b"999999"):
            assert not bomb.triggers([arg]), arg

    def test_environment_oracles_are_environmental(self):
        # The sv_* env bombs must NOT trigger from argv alone.
        for bomb_id in ("sv_time", "sv_web", "sv_syscall"):
            bomb = get_bomb(bomb_id)
            assert bomb.oracle_env is not None
            assert not bomb.triggers([b"anything"])
            assert bomb.triggers(bomb.seed_argv, bomb.oracle_env)

    def test_fixed_env_part_of_world(self):
        bomb = get_bomb("cs_file_name")
        # The key file exists in the bomb's world; the right *name* triggers.
        assert bomb.triggers([b"unlock.key"])
        assert not bomb.triggers([b"wrong.name"])


class TestSizes:
    def test_sizes_in_band(self):
        sizes = dataset_sizes()
        assert len(sizes) == 22
        assert 10_000 <= min(sizes.values())
        assert max(sizes.values()) <= 25_000
        assert 10_000 <= statistics.median(sizes.values()) <= 25_000

    def test_images_cached(self):
        a = get_bomb("cp_stack").image
        b = get_bomb("cp_stack").image
        assert a is b


class TestBombBehaviour:
    def test_sj_jump_every_block_returns_index(self):
        bomb = get_bomb("sj_jump")
        for v in range(10):
            result = bomb.run([str(v).encode()])
            if v == 7:
                assert result.bomb_triggered
            else:
                assert not result.bomb_triggered
                assert result.exit_code == v

    def test_sj_jump_array_trigger_unique(self):
        bomb = get_bomb("sj_jump_array")
        hits = [v for v in range(10) if bomb.triggers([str(v).encode()])]
        assert hits == [7]

    def test_sa_l1_trigger_unique_in_range(self):
        bomb = get_bomb("sa_l1_array")
        hits = [v for v in range(16) if bomb.triggers([str(v).encode()])]
        assert hits == [6]

    def test_sa_l2_trigger_unique_in_range(self):
        bomb = get_bomb("sa_l2_array")
        hits = [v for v in range(16) if bomb.triggers([str(v).encode()])]
        assert hits == [4]

    def test_cp_exception_needs_the_fault(self):
        bomb = get_bomb("cp_exception")
        assert bomb.triggers([b"77"])      # |77| < 100: faults, g set
        assert not bomb.triggers([b"177"])  # no fault, guard fails

    def test_fp_float_edge(self):
        bomb = get_bomb("fp_float")
        assert bomb.triggers([b"0.00001"])
        assert not bomb.triggers([b"0.001"])   # representable at 1024f
        assert not bomb.triggers([b"-0.00001"])  # x > 0 required

    def test_crypto_bombs_reject_near_misses(self):
        assert not get_bomb("cf_sha1").triggers([b"s3cres"])
        assert not get_bomb("cf_aes").triggers([b"k3y?"])

    def test_run_returns_machine_result(self):
        result = get_bomb("sv_arglen").run([b"12345"])
        assert result.exit_code == 0
        assert not result.bomb_triggered
